"""Pluggable parallel execution for the query services.

The batch service and the stream engine both fan work out over
embarrassingly parallel per-query units — joining a prepared query, or
delta-matching one continuous query against a shared batch seed.  This
module abstracts *how* that fan-out happens behind one
:class:`QueryExecutor` protocol with three implementations:

* :class:`SerialExecutor` — an in-process loop.  The reference
  executor: zero concurrency, zero overhead, bit-for-bit deterministic.
* :class:`ThreadExecutor` — a :class:`~concurrent.futures.
  ThreadPoolExecutor`.  Overlaps I/O and the numpy kernels that release
  the GIL; Python-heavy join loops barely overlap.
* :class:`ProcessExecutor` — a :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True multi-core parallelism for the
  Python/numpy-heavy joining phase, at the cost of pickling work units
  across process boundaries.

All three produce *identical results in submission order*: executors
change wall-clock only, never match sets, simulated measurements, or
transaction totals (each query runs on its own simulated device whose
accounting is deterministic).

Shipping contract (ProcessExecutor)
-----------------------------------

:meth:`QueryExecutor.execute_prepared` ships
:class:`~repro.core.engine.PreparedQuery` objects to the workers, so
everything a prepared query carries must pickle: the query
:class:`~repro.graph.labeled_graph.LabeledGraph` (numpy arrays), the
candidate arrays, the :class:`~repro.core.plan.JoinPlan` (tuples), and
the simulated :class:`~repro.gpusim.device.Device` mid-flight (plain
counters — no locks, no handles).

The data-graph-sized artifacts never ride in those pickles.  Under the
default ``"shm"`` data plane the executor publishes the served engine's
CSR arrays, signature-table rows, and PCSR layers into named
:mod:`multiprocessing.shared_memory` segments
(:mod:`repro.storage.shm`) and ships only a compact
:class:`~repro.storage.shm.EngineArtifactsHandle` — segment names +
dtypes + shapes + an epoch — inside the :class:`EngineBuildSpec` the
pool initializer receives.  Workers attach the segments read-only by
name and memoize the attach per publication, so what crosses the pipe
is O(handle) bytes regardless of ``|G|``.  The executor owns the
segments: they are re-published when the engine spec changes and
unlinked on :meth:`ProcessExecutor.shutdown` (with an ``atexit``
backstop), including after broken-pool recovery.  Engines whose store
is a hand-injected subclass fall back to a worker-side deterministic
store rebuild from the attached graph + config.

The legacy ``"pickle"`` plane (``data_plane="pickle"``) ships the full
graph inside the spec instead — workers rebuild every artifact locally.
It remains as the differential baseline for the shm plane and for
platforms without POSIX shared memory.  Either way a worker-side engine
executes a prepared query bit-for-bit like the parent's engine would.

When to use which
-----------------

Process pools win when per-query work is Python-bound and large
relative to the pickle cost of its inputs/outputs (multi-step joins on
non-trivial candidate sets, multi-core hosts).  Thread pools win when
per-query work is dominated by GIL-releasing numpy kernels, or when the
host has a single core and process bootstrap would be pure overhead.
Serial is for debugging and as the determinism oracle.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine, PreparedQuery
from repro.core.result import MatchResult
from repro.errors import ConfigError
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.metrics import absorb_snapshot, get_registry, scoped_registry
from repro.obs.trace import get_tracer, set_tracer, shipped_spans
from repro.storage.shm import (
    BlockLease,
    EngineArtifactsHandle,
    attach_engine,
    publish_engine,
)

DEFAULT_EXECUTOR_WORKERS = 4

#: the names accepted by :func:`make_executor` (and the CLI flag)
EXECUTOR_KINDS = ("serial", "thread", "process")

#: how :class:`ProcessExecutor` splits a batch into pickled chunks
CHUNKING_KINDS = ("static", "cost")

#: how the data-graph-sized context reaches process workers
DATA_PLANES = ("shm", "pickle")

#: environment override for the process pool start method (fork/spawn)
START_METHOD_ENV = "GSI_EXECUTOR_START_METHOD"

#: monotonic epochs for engine publications (bumped per re-publish)
_PLANE_EPOCHS = itertools.count(1)


@dataclass(frozen=True)
class EngineBuildSpec:
    """Everything needed to reconstruct a serving engine in a worker.

    Two forms, one per data plane:

    * ``artifacts`` set (shm plane) — a compact
      :class:`~repro.storage.shm.EngineArtifactsHandle`; the worker
      attaches the published shared-memory segments read-only by name.
      ``graph`` is ``None`` so the spec pickles in O(handle) bytes.
    * ``graph`` set (pickle plane) — the worker rebuilds the offline
      artifacts (signature table + storage structure) from the graph
      and config locally.

    Both builds are deterministic, so a worker-built engine executes a
    prepared query bit-for-bit like the parent's engine would.
    """

    graph: Optional[LabeledGraph]
    config: GSIConfig
    artifacts: Optional[EngineArtifactsHandle] = None

    def build(self) -> GSIEngine:
        if self.artifacts is not None:
            return attach_engine(self.artifacts, self.config)
        if self.graph is None:
            # A shm-plane spec whose handle was stripped (or a spec
            # built with neither form) must fail here, not as an
            # AttributeError deep inside signature encoding.
            raise ConfigError(
                "EngineBuildSpec carries neither artifacts nor a graph; "
                "a worker cannot rebuild the engine")
        return GSIEngine(self.graph, self.config)


@dataclass
class EngineHandle:
    """A live engine plus the spec to rebuild it elsewhere.

    In-process executors execute on ``engine`` directly; the process
    executor ships ``spec`` to its workers instead.
    """

    engine: GSIEngine
    spec: EngineBuildSpec

    @classmethod
    def for_engine(cls, engine: GSIEngine) -> "EngineHandle":
        return cls(engine=engine,
                   spec=EngineBuildSpec(engine.graph, engine.config))


@dataclass
class ExecutedQuery:
    """Outcome of executing one prepared query (joins a ``BatchItem``).

    ``spans`` carries trace spans recorded inside a process worker
    back across the pickle boundary; the process executor absorbs
    them into the coordinator's tracer before returning, so the field
    is empty again by the time callers see it.
    """

    index: int
    result: MatchResult
    error: Optional[str] = None
    execute_ms: float = 0.0
    spans: List[Dict[str, Any]] = field(default_factory=list)


#: (submission index, prepared query) pairs fed to an executor
PreparedTask = Tuple[int, PreparedQuery]


def _execute_one(engine: GSIEngine, index: int, prepared: PreparedQuery,
                 error_label: str) -> ExecutedQuery:
    """Execute one prepared query, converting failures to per-item
    errors (shared by every executor so error semantics are uniform)."""
    start = time.perf_counter()
    try:
        result = engine.execute(prepared)
        error = None
    except Exception as exc:  # noqa: BLE001 - one bad query must never
        # abort the rest of the batch; report it per item.
        result = MatchResult(engine=error_label)
        error = f"{type(exc).__name__}: {exc}"
    return ExecutedQuery(index=index, result=result, error=error,
                         execute_ms=(time.perf_counter() - start) * 1000.0)


class QueryExecutor(ABC):
    """How per-query work units run: serially, on threads, or processes.

    Two entry points cover both services:

    * :meth:`execute_prepared` — the batch path: run the joining phase
      of already-prepared queries, returning outcomes in submission
      order.
    * :meth:`map_tasks` — the generic path (stream delta matching):
      apply a module-level function to payloads, sharing one
      batch-constant context object, results in payload order.
    """

    name: str = "abstract"
    workers: int = 1

    @abstractmethod
    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        """Run the joining phase of ``tasks``; submission order kept."""

    @abstractmethod
    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        """``[fn(shared, p) for p in payloads]``, possibly in parallel.

        ``fn`` must be a module-level callable and ``shared``/payloads
        picklable for the process executor; results keep payload order.
        """

    def shutdown(self) -> None:
        """Release pooled resources (idempotent; executor stays usable —
        pools are recreated lazily on the next call)."""

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


class SerialExecutor(QueryExecutor):
    """The reference executor: a plain in-process loop."""

    name = "serial"

    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        with get_tracer().span("executor.execute_prepared",
                               executor=self.name, tasks=len(tasks)):
            return [_execute_one(handle.engine, index, prepared,
                                 error_label)
                    for index, prepared in tasks]

    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        return [fn(shared, payload) for payload in payloads]


class ThreadExecutor(QueryExecutor):
    """Worker threads; best when the work releases the GIL (numpy).

    The thread pool is created lazily and kept across calls (a stream
    applies thousands of batches; spawning threads per batch is pure
    overhead) and released by :meth:`shutdown`.
    """

    name = "thread"

    def __init__(self, max_workers: int = DEFAULT_EXECUTOR_WORKERS) -> None:
        self.workers = max(1, max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        # Guards lazy creation/teardown when one executor is shared by
        # concurrent callers (e.g. a service serving parallel requests).
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            return self._pool

    def shutdown(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        if self.workers == 1 or len(tasks) <= 1:
            return SerialExecutor().execute_prepared(handle, tasks,
                                                     error_label)
        with get_tracer().span("executor.execute_prepared",
                               executor=self.name, tasks=len(tasks)):
            return list(self._ensure_pool().map(
                lambda task: _execute_one(handle.engine, task[0],
                                          task[1], error_label),
                tasks))

    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        if self.workers == 1 or len(payloads) <= 1:
            return SerialExecutor().map_tasks(fn, payloads, shared)
        return list(self._ensure_pool().map(lambda p: fn(shared, p),
                                            payloads))


# ----------------------------------------------------------------------
# Chunking policies: how a batch splits into pickled work units
# ----------------------------------------------------------------------


def estimated_task_cost(prepared: PreparedQuery) -> int:
    """Join-work proxy for one prepared query: total candidate mass.

    The joining phase starts from a candidate set and repeatedly
    intersects against others, so the summed ``|C(u)|`` is a cheap
    monotone estimate of how heavy a query is relative to its batch
    mates.  Queries with no plan (filtering proved them unmatchable, or
    the budget ran out) cost ~nothing and are scored 1.
    """
    sizes = getattr(prepared, "candidate_sizes", None)
    if not sizes or getattr(prepared, "plan", None) is None:
        return 1
    return max(1, int(sum(sizes.values())))


def balanced_chunks(items: List[Any], num_chunks: int,
                    costs: Sequence[int]) -> List[List[Any]]:
    """Greedy LPT bin packing of ``items`` into ``<= num_chunks`` bins.

    Items are placed heaviest-first onto the currently lightest bin
    (first lightest on ties, original order on equal cost), so a skewed
    batch — one huge query plus many small ones — no longer rides in a
    single static slice that one worker drains alone.  Deterministic;
    empty bins are dropped, bins keep submission order internally and
    are ordered by their first item so downstream index-sorted merges
    see the same contract as static chunking.
    """
    if len(costs) != len(items):
        raise ValueError("need one cost per item")
    num_chunks = max(1, min(num_chunks, len(items)))
    order = sorted(range(len(items)), key=lambda i: (-costs[i], i))
    bins: List[List[int]] = [[] for _ in range(num_chunks)]
    loads = [0] * num_chunks
    for i in order:
        b = loads.index(min(loads))
        bins[b].append(i)
        loads[b] += costs[i]
    chunks = [sorted(b) for b in bins if b]
    chunks.sort(key=lambda chunk: chunk[0])
    return [[items[i] for i in chunk] for chunk in chunks]


# ----------------------------------------------------------------------
# Process pool: per-worker engine bootstrap + chunked work shipping
# ----------------------------------------------------------------------

#: per-worker-process serving engine, built once by the pool initializer
_WORKER_ENGINE: Optional[GSIEngine] = None


def _process_worker_init(spec: Optional[EngineBuildSpec]) -> None:
    """Pool initializer: bootstrap this worker's engine exactly once.

    The spec is pickled once per worker (not per query); the worker
    rebuilds the signature table and storage structure locally, so no
    data-graph-sized artifact ever crosses the process boundary again.

    Fork-mode workers inherit the coordinator's process globals —
    including a recording tracer, whose spans would silently die with
    the worker.  Reset to the null tracer so worker spans go through
    the explicit shipping path (:func:`repro.obs.trace.shipped_spans`)
    and re-parent in the coordinator, identically under fork and spawn.
    """
    set_tracer(None)
    global _WORKER_ENGINE
    _WORKER_ENGINE = spec.build() if spec is not None else None


def _process_execute_chunk(error_label: str,
                           tasks: List[PreparedTask]
                           ) -> Tuple[List[ExecutedQuery],
                                      Dict[str, Any]]:
    """Worker-side joining phase over one pickled chunk.

    Trace spans recorded during each execution ship back on the
    :class:`ExecutedQuery` (re-parented under the coordinator's tree
    via the ``TraceContext`` that pickled in with the prepared query);
    the chunk's metric deltas ship as one mergeable snapshot.
    """
    engine = _WORKER_ENGINE
    if engine is None:
        raise RuntimeError(
            "process worker has no engine; the pool was created without "
            "an EngineBuildSpec")
    executed: List[ExecutedQuery] = []
    with scoped_registry() as registry:
        for index, prepared in tasks:
            with shipped_spans(prepared.trace) as spans:
                item = _execute_one(engine, index, prepared,
                                    error_label)
            item.spans = spans
            executed.append(item)
    return executed, registry.snapshot()


def _process_map_chunk(fn: Callable[[Any, Any], Any], shared: Any,
                       payloads: List[Any]) -> List[Any]:
    """Worker-side generic map over one pickled chunk (``shared`` is
    pickled once per chunk, not once per payload)."""
    return [fn(shared, payload) for payload in payloads]


def _process_engine_probe(_shared: Any, _payload: Any) -> Tuple[int, int]:
    """(pid, id of the worker engine) — lets tests prove the per-worker
    bootstrap happened once, not once per query."""
    import os

    return os.getpid(), 0 if _WORKER_ENGINE is None else id(_WORKER_ENGINE)


class ProcessExecutor(QueryExecutor):
    """Worker processes with a one-time per-worker engine bootstrap.

    The pool is created lazily and kept alive across calls, so repeated
    batches amortize both process spawn and engine reconstruction.  A
    call with a *different* :class:`EngineBuildSpec` tears the pool down
    and rebuilds it for the new engine.

    Parameters
    ----------
    max_workers:
        Worker process count.
    chunk_size:
        Work units per pickled chunk; default spreads each call over
        ``2 x max_workers`` chunks for load balance.
    chunking:
        ``"static"`` slices the batch into equal-count chunks
        (``ceil(n / 2*max_workers)``); ``"cost"`` packs prepared
        queries into the same number of chunks by
        :func:`estimated_task_cost` (greedy LPT), so one heavy query in
        a skewed batch does not pin a whole static slice to a single
        worker.  Results are identical either way — chunking moves
        work, never answers.  Generic :meth:`map_tasks` payloads carry
        no cost estimate and always chunk statically.
    data_plane:
        ``"shm"`` (default) publishes engine artifacts into shared
        memory and ships handles (see the module docstring's shipping
        contract); ``"pickle"`` ships the full graph inside the spec —
        the legacy plane, kept as the differential baseline.
    start_method:
        Multiprocessing start method for the pool (``"fork"``,
        ``"spawn"``, ``"forkserver"``); ``None`` defers to the
        ``GSI_EXECUTOR_START_METHOD`` environment variable, then the
        platform default.

    After each call :attr:`last_shipment` holds what actually crossed
    the pipe — ``{"plane", "call", "context_bytes", "chunks"}`` where
    ``context_bytes`` is the pickled size of the batch-constant context
    (the engine spec for :meth:`execute_prepared`, ``shared`` for
    :meth:`map_tasks`).  Benchmarks persist it to show the per-batch
    context is O(handle), not O(|G|), once the pool is warm.
    """

    name = "process"

    def __init__(self, max_workers: int = DEFAULT_EXECUTOR_WORKERS,
                 chunk_size: Optional[int] = None,
                 chunking: str = "static",
                 data_plane: str = "shm",
                 start_method: Optional[str] = None) -> None:
        if chunking not in CHUNKING_KINDS:
            raise ValueError(
                f"unknown chunking {chunking!r}; expected one of "
                f"{CHUNKING_KINDS}")
        if data_plane not in DATA_PLANES:
            raise ValueError(
                f"unknown data plane {data_plane!r}; expected one of "
                f"{DATA_PLANES}")
        self.workers = max(1, max_workers)
        self.chunk_size = chunk_size
        self.chunking = chunking
        self.data_plane = data_plane
        self.start_method = (start_method
                             or os.environ.get(START_METHOD_ENV) or None)
        self.last_shipment: Optional[Dict[str, Any]] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_spec: Optional[EngineBuildSpec] = None
        # shm plane: the current publication — (source spec, handle
        # spec) plus the lease keeping its segments alive.
        self._plane_memo: Optional[
            Tuple[EngineBuildSpec, EngineBuildSpec]] = None
        self._plane_lease: Optional[BlockLease] = None
        # Guards lazy creation/teardown under concurrent callers.  Note
        # that a spec *change* still tears down the old pool, so one
        # ProcessExecutor should serve one engine at a time; concurrent
        # same-spec callers are fine.
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------

    def _ensure_pool(self, spec: Optional[EngineBuildSpec]
                     ) -> ProcessPoolExecutor:
        """The live pool, (re)created when the engine spec changes.

        ``spec=None`` (generic :meth:`map_tasks` work) reuses whatever
        pool exists — a worker engine sitting unused is harmless.
        """
        with self._pool_lock:
            if self._pool is not None and (
                    spec is None or spec == self._pool_spec):
                return self._pool
            old, self._pool = self._pool, None
            if old is not None:
                old.shutdown(wait=True)
            kwargs = {}
            if self.start_method is not None:
                kwargs["mp_context"] = multiprocessing.get_context(
                    self.start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_process_worker_init, initargs=(spec,),
                **kwargs)
            self._pool_spec = spec
            return self._pool

    def _shared_spec(self, handle: EngineHandle) -> EngineBuildSpec:
        """The spec to ship for ``handle``'s engine under the configured
        data plane.

        On the shm plane the engine's artifacts are published into
        shared segments once per engine: the publication is memoized on
        the source spec, so repeated batches against the same engine
        reuse both the segments and (via spec equality in
        :meth:`_ensure_pool`) the worker pool.  A different engine
        re-publishes under a fresh epoch and releases the old lease —
        existing worker mappings stay valid on Linux, but new attaches
        of the retired handles fail loudly.
        """
        if self.data_plane != "shm":
            return handle.spec
        with self._pool_lock:
            if (self._plane_memo is not None
                    and self._plane_memo[0] == handle.spec):
                return self._plane_memo[1]
        artifacts, lease = publish_engine(handle.engine,
                                          epoch=next(_PLANE_EPOCHS))
        shared = EngineBuildSpec(graph=None, config=handle.spec.config,
                                 artifacts=artifacts)
        with self._pool_lock:
            old_lease, self._plane_lease = self._plane_lease, lease
            self._plane_memo = (handle.spec, shared)
        if old_lease is not None:
            old_lease.release()
        return shared

    def _chunks(self, items: List[Any],
                max_parts: Optional[int] = None) -> List[List[Any]]:
        parts = max_parts if max_parts is not None else self.workers * 2
        size = self.chunk_size or max(1, math.ceil(len(items) / parts))
        return [items[i:i + size] for i in range(0, len(items), size)]

    def _prepared_chunks(self, tasks: List[PreparedTask]) -> List[List[Any]]:
        """Chunk prepared-query tasks by the configured policy."""
        if self.chunking != "cost" or self.chunk_size is not None:
            return self._chunks(tasks)
        costs = [estimated_task_cost(prepared) for _, prepared in tasks]
        return balanced_chunks(tasks, self.workers * 2, costs)

    def shutdown(self) -> None:
        """Tear down the pool and unlink any shared segments this
        executor published (idempotent; executor stays usable — the
        next call republishes and recreates the pool lazily)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_spec = None
            lease, self._plane_lease = self._plane_lease, None
            self._plane_memo = None
        if lease is not None:
            lease.release()
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------

    def _run_chunked(self,
                     spec_factory: Callable[
                         [], Optional[EngineBuildSpec]],
                     submit: Callable[[ProcessPoolExecutor, List[Any]],
                                      Any],
                     chunks: List[List[Any]]) -> List[List[Any]]:
        """Submit chunks and gather results in submission order.

        A dead worker (OOM-killed, segfault) breaks the whole pool; the
        broken pool is discarded and the call retried once on a fresh
        one, so a long-lived service recovers from transient worker
        death instead of failing every subsequent batch.  ``spec_factory``
        is re-evaluated per attempt: the recovery :meth:`shutdown` also
        unlinked this executor's shared segments, so the retry must
        re-publish under fresh names rather than ship stale handles.
        """
        for attempt in (0, 1):
            try:
                # submit() also raises BrokenProcessPool when a worker
                # died while the pool was idle; keep it inside the
                # retry scope so an idle-broken pool is replaced too.
                pool = self._ensure_pool(spec_factory())
                futures = [submit(pool, chunk) for chunk in chunks]
                return [future.result() for future in futures]
            except BrokenProcessPool:
                # Never hand a dead pool (or retired segments) to the
                # next call.
                self.shutdown()
                if attempt == 1:
                    raise
        raise AssertionError("unreachable")

    def execute_prepared(self, handle: EngineHandle,
                         tasks: Sequence[PreparedTask],
                         error_label: str = "GSI"
                         ) -> List[ExecutedQuery]:
        tasks = list(tasks)
        if not tasks:
            return []
        shipped_spec: List[EngineBuildSpec] = []

        def spec_factory() -> EngineBuildSpec:
            spec = self._shared_spec(handle)
            shipped_spec.append(spec)
            return spec

        tracer = get_tracer()
        with tracer.span("executor.execute_prepared",
                         executor=self.name, plane=self.data_plane,
                         tasks=len(tasks)) as span:
            chunks = self._prepared_chunks(tasks)
            span.set_attribute("chunks", len(chunks))
            results = self._run_chunked(
                spec_factory,
                lambda pool, chunk: pool.submit(
                    _process_execute_chunk, error_label, chunk),
                chunks)
        self.last_shipment = {
            "plane": self.data_plane, "call": "execute_prepared",
            "context_bytes": len(pickle.dumps(shipped_spec[-1])),
            "chunks": len(chunks),
        }
        get_registry().counter(
            "gsi_shipped_bytes_total",
            "pickled batch-constant context bytes shipped to "
            "process workers").inc(
                self.last_shipment["context_bytes"],
                plane=self.data_plane, kind="execute_prepared")
        executed: List[ExecutedQuery] = []
        for chunk_executed, snapshot in results:
            absorb_snapshot(snapshot)
            executed.extend(chunk_executed)
        for item in executed:
            if item.spans:
                tracer.absorb(item.spans)
                item.spans = []
        # Chunks preserve submission order already; the explicit sort
        # pins the merge contract independent of chunking policy.
        executed.sort(key=lambda e: e.index)
        return executed

    def map_tasks(self, fn: Callable[[Any, Any], Any],
                  payloads: Sequence[Any],
                  shared: Any = None) -> List[Any]:
        payloads = list(payloads)
        if not payloads:
            return []
        # One chunk per worker, not 2x: ``shared`` (for stream batches
        # the delta context, for shards the shard context) is pickled
        # per chunk, so fewer chunks halve the shipping cost — which is
        # O(handle) when the caller routes the snapshot through the shm
        # plane, and O(|G|) on the legacy pickle plane.
        with get_tracer().span("executor.map_tasks",
                               executor=self.name,
                               plane=self.data_plane,
                               tasks=len(payloads)) as span:
            chunks = self._chunks(payloads, max_parts=self.workers)
            span.set_attribute("chunks", len(chunks))
            results = self._run_chunked(
                lambda: None,
                lambda pool, chunk: pool.submit(
                    _process_map_chunk, fn, shared, chunk),
                chunks)
        self.last_shipment = {
            "plane": self.data_plane, "call": "map_tasks",
            "context_bytes": len(pickle.dumps(shared)),
            "chunks": len(chunks),
        }
        get_registry().counter(
            "gsi_shipped_bytes_total",
            "pickled batch-constant context bytes shipped to "
            "process workers").inc(
                self.last_shipment["context_bytes"],
                plane=self.data_plane, kind="map_tasks")
        return [item for res in results for item in res]


def make_executor(kind: str,
                  max_workers: int = DEFAULT_EXECUTOR_WORKERS,
                  chunking: str = "static",
                  data_plane: str = "shm") -> QueryExecutor:
    """Build an executor by name (the CLI's ``--executor`` values).

    Arguments are validated eagerly: a non-positive ``max_workers``,
    an unknown ``kind``, ``chunking`` policy, or ``data_plane`` raise
    :class:`ValueError` here, instead of surfacing later as an opaque
    pool failure mid-batch.  (The executor classes themselves keep
    their historical clamp-to-1 behavior for direct construction.)
    ``chunking`` and ``data_plane`` only affect the process executor.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of "
            f"{EXECUTOR_KINDS}")
    if max_workers <= 0:
        raise ValueError(
            f"max_workers must be >= 1, got {max_workers}")
    if chunking not in CHUNKING_KINDS:
        raise ValueError(
            f"unknown chunking {chunking!r}; expected one of "
            f"{CHUNKING_KINDS}")
    if data_plane not in DATA_PLANES:
        raise ValueError(
            f"unknown data plane {data_plane!r}; expected one of "
            f"{DATA_PLANES}")
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(max_workers=max_workers)
    return ProcessExecutor(max_workers=max_workers, chunking=chunking,
                           data_plane=data_plane)
