"""Batch query service: amortize offline artifacts across many queries.

A :class:`BatchEngine` owns one :class:`~repro.core.engine.GSIEngine`
(signature table and storage structure built once) plus a shared
:class:`~repro.service.plan_cache.PlanCache`, and runs whole batches of
queries through the engine's ``prepare``/``execute`` path.  Batches run
in two phases: every query is *prepared* serially in the calling
process (filtering + planning through the shared plan cache and
candidate-shape memo — deterministic cache accounting regardless of
parallelism), then the prepared queries are *executed* (the joining
phase, the heavy part) through a pluggable
:class:`~repro.service.executors.QueryExecutor` — serial, thread pool,
or process pool — and merged back in submission order.  Per-query
:class:`~repro.core.result.MatchResult` objects are aggregated into a
:class:`BatchReport` carrying latency percentiles, plan-cache
statistics, and memory-transaction totals.

Simulated measurements are untouched by batching: every query still runs
on its own simulated device, so a resubmitted query reproduces its
``MatchResult`` exactly.  The one caveat is plan-cache hits across
*isomorphic but differently numbered* queries, which replay a translated
plan that fresh planning might not tie-break identically — simulated
time can then deviate slightly, while the match set never does.  What
the service amortizes is host-side work — engine construction,
join-order planning (via the plan cache), and Python/numpy execution
overlap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine, PreparedQuery
from repro.core.result import MatchResult
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.metrics import SIZE_BUCKETS, get_registry
from repro.obs.stats import percentile
from repro.obs.trace import get_tracer
from repro.service.executors import (
    EngineHandle,
    PreparedTask,
    QueryExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.service.plan_cache import CacheStats, PlanCache

if TYPE_CHECKING:  # service does not depend on the shard package at
    # runtime; a ShardedEngine backend is injected by the caller.
    from repro.shard.engine import (
        ShardedEngine,
        ShardedPrepared,
        ShardReport,
    )

DEFAULT_MAX_WORKERS = 4


def json_sanitize(value: Any) -> Any:
    """Recursively coerce a stats structure into plain JSON types.

    Storage and shard stats dicts mix numpy scalars and integer keys
    (e.g. PCSR ``per_label``) into otherwise plain dicts; ``json.dumps``
    rejects the former and silently stringifies the latter only at the
    top level.  Every ``to_dict`` report path funnels through here so
    serialized reports are valid JSON end to end.
    """
    if isinstance(value, dict):
        return {str(k): json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [json_sanitize(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    return value


@dataclass
class BatchItem:
    """One query's outcome inside a batch (submission order preserved)."""

    index: int
    result: MatchResult
    plan_cached: bool
    host_ms: float  # host wall-clock spent on this query
    error: Optional[str] = None  # per-query failure; result is empty then


@dataclass
class BatchReport:
    """Aggregate outcome of one :meth:`BatchEngine.run_batch` call."""

    items: List[BatchItem] = field(default_factory=list)
    wall_clock_ms: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    #: storage-structure health at batch end (``NeighborStore.stats()``;
    #: PCSR stores report occupancy / dead words / compactions)
    storage: Dict[str, Any] = field(default_factory=dict)
    #: name of the executor that ran the joining phase
    executor: str = ""
    #: scatter-gather details when a sharded backend served the batch
    #: (per-shard transactions / storage / replication); ``None`` on
    #: the single-engine path
    shard: Optional["ShardReport"] = None

    # ------------------------------------------------------------------

    @property
    def results(self) -> List[MatchResult]:
        """Per-query results in submission order."""
        return [item.result for item in self.items]

    @property
    def num_queries(self) -> int:
        return len(self.items)

    @property
    def timeouts(self) -> int:
        return sum(1 for item in self.items if item.result.timed_out)

    @property
    def errors(self) -> int:
        """Queries rejected by the engine (bad input, planning error)."""
        return sum(1 for item in self.items if item.error is not None)

    @property
    def total_matches(self) -> int:
        return sum(item.result.num_matches for item in self.items)

    @property
    def total_simulated_ms(self) -> float:
        """Sum of simulated per-query response times."""
        return sum(item.result.elapsed_ms for item in self.items)

    @property
    def total_gld(self) -> int:
        return sum(item.result.counters.gld for item in self.items)

    @property
    def total_gst(self) -> int:
        return sum(item.result.counters.gst for item in self.items)

    @property
    def total_kernel_launches(self) -> int:
        return sum(item.result.counters.kernel_launches
                   for item in self.items)

    @property
    def plan_cache_hits(self) -> int:
        return sum(1 for item in self.items if item.plan_cached)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per host wall-clock second."""
        if self.wall_clock_ms <= 0.0:
            return 0.0
        return self.num_queries / (self.wall_clock_ms / 1000.0)

    def latency_percentile(self, pct: float) -> float:
        """Percentile of simulated per-query latency, in ms.

        Errored items are excluded: a rejected query carries an empty
        result with near-zero latency, which would skew p50/p95
        downward and make a failing batch look *faster*.  Failures are
        reported through :attr:`errors` instead.
        """
        values = [item.result.elapsed_ms for item in self.items
                  if item.error is None]
        return percentile(values, pct)

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p90_ms(self) -> float:
        return self.latency_percentile(90)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile(99)

    def to_dict(self) -> Dict[str, Any]:
        """The report as one JSON-serializable dict.

        This is the shape the serving metrics layer aggregates and the
        bench ``--json`` outputs persist: service-level latency
        percentiles, plan-cache counters, simulated transaction totals,
        storage health, and (when present) the per-shard summary.
        """
        shard = None
        if self.shard is not None:
            info = self.shard.info
            shard = {
                "max_shard_transactions":
                    int(self.shard.max_shard_transactions),
                "total_transactions": int(self.shard.total_transactions),
            }
            if info is not None:
                shard.update({
                    "num_shards": int(info.num_shards),
                    "partitioner": info.partitioner,
                    "halo_hops": int(info.halo_hops),
                    "vertex_replication":
                        float(info.vertex_replication),
                })
        return json_sanitize({
            "num_queries": self.num_queries,
            "wall_clock_ms": float(self.wall_clock_ms),
            "throughput_qps": float(self.throughput_qps),
            "total_matches": self.total_matches,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "plan_cache_hits": self.plan_cache_hits,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
            "total_simulated_ms": self.total_simulated_ms,
            "total_gld": self.total_gld,
            "total_gst": self.total_gst,
            "total_kernel_launches": self.total_kernel_launches,
            "cache": self.cache.to_dict(),
            "storage": self.storage,
            "executor": self.executor,
            "shard": shard,
        })

    def summary_line(self) -> str:
        """One-line human summary (CLI and benchmark output)."""
        via = f" via {self.executor}" if self.executor else ""
        return (f"{self.num_queries} queries in "
                f"{self.wall_clock_ms:.0f} ms wall{via} "
                f"({self.throughput_qps:.1f} q/s) | "
                f"sim p50/p90/p99 = {self.p50_ms:.3f}/"
                f"{self.p90_ms:.3f}/{self.p99_ms:.3f} ms | "
                f"matches={self.total_matches} "
                f"timeouts={self.timeouts} errors={self.errors} | "
                f"plan cache {self.cache.hits}/{self.cache.lookups} hits "
                f"({100.0 * self.cache.hit_rate:.0f}%)")


class BatchEngine:
    """Serve batches of subgraph queries over one data graph.

    Parameters
    ----------
    graph:
        The data graph; ignored when ``engine`` is supplied.
    config:
        Engine configuration (defaults to plain GSI).
    cache_capacity:
        Plan-cache size; plans for the ``cache_capacity`` most recently
        used query shapes are kept.
    max_workers:
        Default worker count when no explicit executor is given (a
        thread pool is built per batch).  The engine's offline
        artifacts are read-only during matching and each query runs on
        its own simulated device, so queries are embarrassingly
        parallel.
    engine:
        An existing :class:`GSIEngine` to serve from (its graph/config
        take precedence).
    executor:
        A :class:`~repro.service.executors.QueryExecutor` running the
        joining phase — serial, thread pool, or process pool.  The
        caller owns its lifecycle (``shutdown()``); ``None`` falls back
        to a per-batch thread pool of ``max_workers`` threads.  A
        :class:`~repro.service.executors.ProcessExecutor` requires the
        engine's artifacts to be derivable from ``(graph, config)`` —
        see the pickling contract in :mod:`repro.service.executors`.
    sharded:
        A :class:`~repro.shard.engine.ShardedEngine` backend.  When
        supplied, batches are served scatter-gather over its shards
        (match sets identical to the single-engine path by the
        ownership/halo argument); ``graph``/``config``/``engine`` are
        taken from it, the plan cache is its shared cache, and
        :attr:`BatchReport.shard` carries the per-shard breakdown.
    """

    name = "GSI-batch"

    def __init__(self, graph: Optional[LabeledGraph] = None,
                 config: Optional[GSIConfig] = None,
                 cache_capacity: int = 256,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 engine: Optional[GSIEngine] = None,
                 executor: Optional[QueryExecutor] = None,
                 sharded: Optional["ShardedEngine"] = None) -> None:
        self.sharded = sharded
        if sharded is not None:
            if engine is not None:
                raise ValueError(
                    "pass either a sharded backend or an engine, not "
                    "both")
            self.engine = None
            self.graph = sharded.graph
            self.config = sharded.config
            self.plan_cache = sharded.plan_cache
            self.max_workers = max(1, max_workers)
            self.executor = executor
            self._handle = None
            return
        if engine is None:
            if graph is None:
                raise ValueError("need a graph, an engine, or a sharded "
                                 "backend")
            engine = GSIEngine(graph, config)
        self.engine = engine
        self.graph = engine.graph
        self.config = engine.config
        self.plan_cache = PlanCache(capacity=cache_capacity)
        self.max_workers = max(1, max_workers)
        self.executor = executor
        self._handle = EngineHandle.for_engine(engine)

    # ------------------------------------------------------------------

    def prepare(self, query: LabeledGraph
                ) -> Union[PreparedQuery, "ShardedPrepared"]:
        """Filter + plan one query through the shared plan cache."""
        if self.sharded is not None:
            return self.sharded.prepare(query)
        return self.engine.prepare(query, plan_cache=self.plan_cache)

    def execute(self, prepared: PreparedQuery) -> MatchResult:
        if self.sharded is not None:
            raise ValueError(
                "the sharded backend merges per-shard execution; use "
                "match() or run_batch()")
        return self.engine.execute(prepared)

    def match(self, query: LabeledGraph) -> MatchResult:
        """Single-query convenience path (still plan-cached)."""
        if self.sharded is not None:
            return self.sharded.match(query)
        return self.execute(self.prepare(query))

    # ------------------------------------------------------------------

    def _resolve_executor(self, max_workers: Optional[int],
                          executor: Optional[QueryExecutor]
                          ) -> Tuple[QueryExecutor, bool]:
        """The executor for one batch, plus whether this call owns it
        (caller-supplied executors are never shut down here).

        Precedence: an explicit per-call ``executor`` wins, then an
        explicit per-call ``max_workers`` (which keeps its historical
        meaning by building a per-batch thread pool even when the
        service holds a fixed executor), then the constructor executor,
        then a thread pool of the constructor's ``max_workers``.
        """
        if executor is not None:
            return executor, False
        if max_workers is None and self.executor is not None:
            return self.executor, False
        workers = max(1, max_workers if max_workers is not None
                      else self.max_workers)
        if workers == 1:
            return SerialExecutor(), True
        return ThreadExecutor(max_workers=workers), True

    def run_batch(self, queries: Sequence[LabeledGraph],
                  max_workers: Optional[int] = None,
                  executor: Optional[QueryExecutor] = None) -> BatchReport:
        """Serve one batch; results keep submission order.

        Phase 1 prepares every query serially in this process (plan
        cache and candidate-shape memo accounting is therefore
        deterministic — identical under every executor); phase 2 runs
        the joining phase through ``executor`` (argument, then an
        explicit ``max_workers`` as a per-batch thread pool, then the
        constructor's executor, then a thread pool of the constructor's
        ``max_workers``).
        """
        chosen, owned = self._resolve_executor(max_workers, executor)
        if self.sharded is not None:
            try:
                with get_tracer().span("batch.run",
                                       queries=len(queries),
                                       executor=chosen.name,
                                       sharded=True):
                    report = self._run_sharded(queries, chosen)
            finally:
                if owned:
                    chosen.shutdown()
            self._record_batch_metrics(report)
            return report
        with get_tracer().span("batch.run", queries=len(queries),
                               executor=chosen.name) as batch_span:
            report = self._run_batch_inner(queries, chosen, owned)
            batch_span.set_attribute("matches", report.total_matches)
            batch_span.set_attribute("errors", report.errors)
        self._record_batch_metrics(report)
        return report

    def _run_batch_inner(self, queries: Sequence[LabeledGraph],
                         chosen: QueryExecutor,
                         owned: bool) -> BatchReport:
        stats_before = self.plan_cache.stats_snapshot()
        start = time.perf_counter()

        items: List[Optional[BatchItem]] = [None] * len(queries)
        pending: List[PreparedTask] = []
        prepared_by_index: Dict[int, PreparedQuery] = {}
        prepare_ms: Dict[int, float] = {}
        for index, query in enumerate(queries):
            t0 = time.perf_counter()
            try:
                prepared = self.prepare(query)
            except Exception as exc:  # noqa: BLE001 - one bad query must
                # never abort the rest of the batch; report it per item.
                items[index] = BatchItem(
                    index=index, result=MatchResult(engine=self.name),
                    plan_cached=False,
                    host_ms=(time.perf_counter() - t0) * 1000.0,
                    error=f"{type(exc).__name__}: {exc}")
                continue
            prepare_ms[index] = (time.perf_counter() - t0) * 1000.0
            prepared_by_index[index] = prepared
            pending.append((index, prepared))

        try:
            if pending:
                for done in chosen.execute_prepared(
                        self._handle, pending, error_label=self.name):
                    items[done.index] = BatchItem(
                        index=done.index, result=done.result,
                        plan_cached=prepared_by_index[
                            done.index].plan_cached,
                        host_ms=prepare_ms[done.index] + done.execute_ms,
                        error=done.error)
        finally:
            if owned:  # deterministic teardown of per-batch pools
                chosen.shutdown()

        wall_ms = (time.perf_counter() - start) * 1000.0
        cache_delta = self.plan_cache.stats_snapshot().diff(stats_before)
        missing = [i for i, item in enumerate(items) if item is None]
        if missing:
            raise RuntimeError(
                f"executor {chosen.name!r} dropped queries {missing}; "
                f"execute_prepared must return every submitted task")
        return BatchReport(items=items, wall_clock_ms=wall_ms,
                           cache=cache_delta,
                           storage=self.engine.store.stats(),
                           executor=chosen.name)

    @staticmethod
    def _record_batch_metrics(report: BatchReport) -> None:
        """Roll one batch's outcome into the process metrics registry."""
        registry = get_registry()
        registry.histogram(
            "gsi_batch_size_queries",
            "Queries per run_batch call.",
            buckets=SIZE_BUCKETS).observe(float(report.num_queries))
        lookups = registry.counter(
            "gsi_cache_lookups_total",
            "Plan/shape cache lookups by outcome.")
        cache = report.cache
        if cache.hits:
            lookups.inc(float(cache.hits), cache="plan", result="hit")
        plan_misses = cache.lookups - cache.hits
        if plan_misses > 0:
            lookups.inc(float(plan_misses), cache="plan",
                        result="miss")
        if cache.shape_hits:
            lookups.inc(float(cache.shape_hits), cache="shape",
                        result="hit")
        if cache.shape_misses:
            lookups.inc(float(cache.shape_misses), cache="shape",
                        result="miss")

    def _run_sharded(self, queries: Sequence[LabeledGraph],
                     executor: QueryExecutor) -> BatchReport:
        """Serve a batch through the sharded backend, translated into
        the ordinary :class:`BatchReport` shape (the full scatter-gather
        breakdown rides along as :attr:`BatchReport.shard`)."""
        shard_report = self.sharded.run_batch(queries, executor=executor)
        items = [BatchItem(index=item.index, result=item.result,
                           plan_cached=item.plan_cached,
                           host_ms=item.host_ms, error=item.error)
                 for item in shard_report.items]
        return BatchReport(
            items=items,
            wall_clock_ms=shard_report.wall_clock_ms,
            cache=shard_report.cache,
            storage={"num_shards": self.sharded.num_shards,
                     "per_shard": shard_report.storage},
            executor=shard_report.executor,
            shard=shard_report)
