"""Batch query service: amortize offline artifacts across many queries.

A :class:`BatchEngine` owns one :class:`~repro.core.engine.GSIEngine`
(signature table and storage structure built once) plus a shared
:class:`~repro.service.plan_cache.PlanCache`, and runs whole batches of
queries through the engine's ``prepare``/``execute`` path on a worker
pool.  Per-query :class:`~repro.core.result.MatchResult` objects are
aggregated into a :class:`BatchReport` carrying latency percentiles,
plan-cache statistics, and memory-transaction totals.

Simulated measurements are untouched by batching: every query still runs
on its own simulated device, so a resubmitted query reproduces its
``MatchResult`` exactly.  The one caveat is plan-cache hits across
*isomorphic but differently numbered* queries, which replay a translated
plan that fresh planning might not tie-break identically — simulated
time can then deviate slightly, while the match set never does.  What
the service amortizes is host-side work — engine construction,
join-order planning (via the plan cache), and Python/numpy execution
overlap.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.core.result import MatchResult
from repro.graph.labeled_graph import LabeledGraph
from repro.service.plan_cache import CacheStats, PlanCache

DEFAULT_MAX_WORKERS = 4


@dataclass
class BatchItem:
    """One query's outcome inside a batch (submission order preserved)."""

    index: int
    result: MatchResult
    plan_cached: bool
    host_ms: float  # host wall-clock spent on this query
    error: Optional[str] = None  # per-query failure; result is empty then


@dataclass
class BatchReport:
    """Aggregate outcome of one :meth:`BatchEngine.run_batch` call."""

    items: List[BatchItem] = field(default_factory=list)
    wall_clock_ms: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    #: storage-structure health at batch end (``NeighborStore.stats()``;
    #: PCSR stores report occupancy / dead words / compactions)
    storage: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def results(self) -> List[MatchResult]:
        """Per-query results in submission order."""
        return [item.result for item in self.items]

    @property
    def num_queries(self) -> int:
        return len(self.items)

    @property
    def timeouts(self) -> int:
        return sum(1 for item in self.items if item.result.timed_out)

    @property
    def errors(self) -> int:
        """Queries rejected by the engine (bad input, planning error)."""
        return sum(1 for item in self.items if item.error is not None)

    @property
    def total_matches(self) -> int:
        return sum(item.result.num_matches for item in self.items)

    @property
    def total_simulated_ms(self) -> float:
        """Sum of simulated per-query response times."""
        return sum(item.result.elapsed_ms for item in self.items)

    @property
    def total_gld(self) -> int:
        return sum(item.result.counters.gld for item in self.items)

    @property
    def total_gst(self) -> int:
        return sum(item.result.counters.gst for item in self.items)

    @property
    def total_kernel_launches(self) -> int:
        return sum(item.result.counters.kernel_launches
                   for item in self.items)

    @property
    def plan_cache_hits(self) -> int:
        return sum(1 for item in self.items if item.plan_cached)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per host wall-clock second."""
        if self.wall_clock_ms <= 0.0:
            return 0.0
        return self.num_queries / (self.wall_clock_ms / 1000.0)

    def latency_percentile(self, pct: float) -> float:
        """Percentile of simulated per-query latency, in ms."""
        if not self.items:
            return 0.0
        values = [item.result.elapsed_ms for item in self.items]
        return float(np.percentile(np.asarray(values), pct))

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile(50)

    @property
    def p90_ms(self) -> float:
        return self.latency_percentile(90)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile(99)

    def summary_line(self) -> str:
        """One-line human summary (CLI and benchmark output)."""
        return (f"{self.num_queries} queries in "
                f"{self.wall_clock_ms:.0f} ms wall "
                f"({self.throughput_qps:.1f} q/s) | "
                f"sim p50/p90/p99 = {self.p50_ms:.3f}/"
                f"{self.p90_ms:.3f}/{self.p99_ms:.3f} ms | "
                f"matches={self.total_matches} "
                f"timeouts={self.timeouts} errors={self.errors} | "
                f"plan cache {self.cache.hits}/{self.cache.lookups} hits "
                f"({100.0 * self.cache.hit_rate:.0f}%)")


class BatchEngine:
    """Serve batches of subgraph queries over one data graph.

    Parameters
    ----------
    graph:
        The data graph; ignored when ``engine`` is supplied.
    config:
        Engine configuration (defaults to plain GSI).
    cache_capacity:
        Plan-cache size; plans for the ``cache_capacity`` most recently
        used query shapes are kept.
    max_workers:
        Worker threads per batch.  The engine's offline artifacts are
        read-only during matching and each query runs on its own
        simulated device, so queries are embarrassingly parallel.
    engine:
        An existing :class:`GSIEngine` to serve from (its graph/config
        take precedence).
    """

    name = "GSI-batch"

    def __init__(self, graph: Optional[LabeledGraph] = None,
                 config: Optional[GSIConfig] = None,
                 cache_capacity: int = 256,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 engine: Optional[GSIEngine] = None) -> None:
        if engine is None:
            if graph is None:
                raise ValueError("need a graph or an engine")
            engine = GSIEngine(graph, config)
        self.engine = engine
        self.graph = engine.graph
        self.config = engine.config
        self.plan_cache = PlanCache(capacity=cache_capacity)
        self.max_workers = max(1, max_workers)

    # ------------------------------------------------------------------

    def prepare(self, query: LabeledGraph):
        """Filter + plan one query through the shared plan cache."""
        return self.engine.prepare(query, plan_cache=self.plan_cache)

    def execute(self, prepared) -> MatchResult:
        return self.engine.execute(prepared)

    def match(self, query: LabeledGraph) -> MatchResult:
        """Single-query convenience path (still plan-cached)."""
        return self.execute(self.prepare(query))

    # ------------------------------------------------------------------

    def _run_one(self, index: int, query: LabeledGraph) -> BatchItem:
        start = time.perf_counter()
        try:
            prepared = self.prepare(query)
            result = self.execute(prepared)
            plan_cached = prepared.plan_cached
            error = None
        except Exception as exc:  # noqa: BLE001 - one bad query must
            # never abort the rest of the batch; report it per item.
            result = MatchResult(engine=self.name)
            plan_cached = False
            error = f"{type(exc).__name__}: {exc}"
        host_ms = (time.perf_counter() - start) * 1000.0
        return BatchItem(index=index, result=result,
                         plan_cached=plan_cached,
                         host_ms=host_ms, error=error)

    def run_batch(self, queries: Sequence[LabeledGraph],
                  max_workers: Optional[int] = None) -> BatchReport:
        """Run ``queries`` concurrently; results keep submission order."""
        workers = max(1, max_workers if max_workers is not None
                      else self.max_workers)
        stats_before = self.plan_cache.stats.snapshot()
        start = time.perf_counter()
        if workers == 1 or len(queries) <= 1:
            items = [self._run_one(i, q) for i, q in enumerate(queries)]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                items = list(pool.map(self._run_one,
                                      range(len(queries)), queries))
        wall_ms = (time.perf_counter() - start) * 1000.0
        cache_delta = self.plan_cache.stats.snapshot().diff(stats_before)
        return BatchReport(items=items, wall_clock_ms=wall_ms,
                           cache=cache_delta,
                           storage=self.engine.store.stats())
