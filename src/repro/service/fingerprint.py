"""Canonical query fingerprints for plan caching.

Two query graphs that are isomorphic *as labeled graphs* (same vertex
labels, same edge labels, up to vertex renumbering) produce the same
fingerprint digest; non-isomorphic queries always differ, because the
digest hashes a *complete certificate* — a canonical serialization from
which the labeled graph can be reconstructed.  The fingerprint also
carries the vertex mapping onto the canonical numbering, which lets a
cached join plan be translated onto any later isomorphic query.

The canonical form is computed with the classic two-stage scheme:

1. Weisfeiler-Leman color refinement seeded with vertex labels, with
   incident edge labels folded into each round, partitions vertices into
   isomorphism-invariant color classes.
2. A backtracking search over color-compatible vertex orderings picks
   the lexicographically smallest certificate.  Query graphs are tiny
   (the paper uses |V(Q)| <= 12), so the search is cheap in practice; a
   node budget guards against adversarially symmetric queries, in which
   case the query is simply reported uncacheable (``None``) rather than
   risking an unsound cache hit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.labeled_graph import LabeledGraph

#: default cap on backtracking nodes before a query is deemed uncacheable
DEFAULT_NODE_BUDGET = 50_000

# One certificate entry per canonical position: the vertex's refined
# color, its label, and its edges back into the already-numbered prefix.
CertEntry = Tuple[int, int, Tuple[Tuple[int, int], ...]]
Certificate = Tuple[CertEntry, ...]


@dataclass(frozen=True)
class QueryFingerprint:
    """A canonical digest plus the mapping that produced it.

    Attributes
    ----------
    digest:
        Hex SHA-256 of the canonical certificate.  Equal digests imply
        isomorphic labeled queries (the certificate is complete).
    mapping:
        ``mapping[v]`` is the canonical id of original vertex ``v``.
    """

    digest: str
    mapping: Tuple[int, ...]

    def inverse(self) -> Tuple[int, ...]:
        """``inverse[c]`` is the original vertex at canonical id ``c``."""
        inv = [0] * len(self.mapping)
        for orig, canon in enumerate(self.mapping):
            inv[canon] = orig
        return tuple(inv)


def wl_colors(graph: LabeledGraph) -> List[int]:
    """Stable Weisfeiler-Leman colors seeded with vertex labels.

    Colors are dense ints assigned by sorted signature rank each round,
    so isomorphic graphs get identical color multisets.
    """
    n = graph.num_vertices
    colors = [graph.vertex_label(v) for v in range(n)]
    # Compress the seed labels to dense ranks.
    rank = {lab: i for i, lab in enumerate(sorted(set(colors)))}
    colors = [rank[c] for c in colors]
    for _ in range(n):
        sigs = []
        for v in range(n):
            nbr_sig = tuple(sorted(
                (int(lab), colors[int(w)])
                for w, lab in zip(graph.neighbors(v),
                                  graph.incident_labels(v))))
            sigs.append((colors[v], nbr_sig))
        rank = {sig: i for i, sig in enumerate(sorted(set(sigs)))}
        new_colors = [rank[sig] for sig in sigs]
        if new_colors == colors:
            break
        colors = new_colors
    return colors


class _SearchBudgetExceeded(Exception):
    pass


class _CanonicalSearch:
    """Backtracking search for the lexicographically smallest certificate."""

    def __init__(self, graph: LabeledGraph, colors: List[int],
                 node_budget: int) -> None:
        self.graph = graph
        self.colors = colors
        self.nodes_left = node_budget
        self.best_cert: Optional[Certificate] = None
        self.best_order: Optional[Tuple[int, ...]] = None

    def _entry(self, v: int, pos_of: Dict[int, int]) -> CertEntry:
        graph = self.graph
        back_edges = tuple(sorted(
            (pos_of[int(w)], int(lab))
            for w, lab in zip(graph.neighbors(v), graph.incident_labels(v))
            if int(w) in pos_of))
        return (self.colors[v], graph.vertex_label(v), back_edges)

    def run(self) -> None:
        self._dfs([], {}, [])

    def _dfs(self, placed: List[int], pos_of: Dict[int, int],
             cert: List[CertEntry]) -> None:
        self.nodes_left -= 1
        if self.nodes_left < 0:
            raise _SearchBudgetExceeded
        n = self.graph.num_vertices
        if len(placed) == n:
            final = tuple(cert)
            if self.best_cert is None or final < self.best_cert:
                self.best_cert = final
                self.best_order = tuple(placed)
            return

        # Candidates: vertices adjacent to the prefix (all vertices when
        # the prefix is empty or the query is disconnected).  The
        # restriction is structural, hence identical across isomorphic
        # graphs.
        remaining = [v for v in range(n) if v not in pos_of]
        if placed:
            frontier = [
                v for v in remaining
                if any(int(w) in pos_of for w in self.graph.neighbors(v))
            ]
            candidates = frontier or remaining
        else:
            candidates = remaining

        # Only minimal-entry candidates can extend a lex-minimal
        # certificate for this prefix; ties must all be explored.
        entries = [(self._entry(v, pos_of), v) for v in candidates]
        min_entry = min(e for e, _ in entries)

        # Prune: a prefix already greater than the incumbent's prefix
        # can never win.
        pos = len(placed)
        if self.best_cert is not None:
            prefix_cmp = tuple(cert) + (min_entry,)
            if prefix_cmp > self.best_cert[:pos + 1]:
                return

        for entry, v in entries:
            if entry != min_entry:
                continue
            placed.append(v)
            pos_of[v] = pos
            cert.append(entry)
            self._dfs(placed, pos_of, cert)
            cert.pop()
            del pos_of[v]
            placed.pop()


def canonical_certificate(
        graph: LabeledGraph,
        node_budget: int = DEFAULT_NODE_BUDGET
) -> Optional[Tuple[Certificate, Tuple[int, ...]]]:
    """Canonical certificate and vertex order, or ``None`` on budget blow.

    The returned order lists original vertex ids by canonical position;
    the certificate is complete: ``(colors, labels, back edges)`` per
    position reconstructs the labeled graph.
    """
    n = graph.num_vertices
    if n == 0:
        return ((), ())
    search = _CanonicalSearch(graph, wl_colors(graph), node_budget)
    try:
        search.run()
    except _SearchBudgetExceeded:
        return None
    assert search.best_cert is not None and search.best_order is not None
    return search.best_cert, search.best_order


def query_fingerprint(query: LabeledGraph,
                      node_budget: int = DEFAULT_NODE_BUDGET
                      ) -> Optional[QueryFingerprint]:
    """Fingerprint ``query``, or ``None`` when canonicalization is too
    expensive (the query is then treated as uncacheable)."""
    canon = canonical_certificate(query, node_budget)
    if canon is None:
        return None
    cert, order = canon
    mapping = [0] * query.num_vertices
    for canon_id, orig in enumerate(order):
        mapping[orig] = canon_id
    payload = repr((query.num_vertices, cert)).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    return QueryFingerprint(digest=digest, mapping=tuple(mapping))
