"""An LRU cache of join plans keyed by canonical query fingerprints.

Join-order planning (Algorithm 2) is host-side work repeated for every
query even though isomorphic queries always admit the same plan up to
vertex renaming.  The cache stores each plan *in canonical vertex
numbering* and translates it through the fingerprint mapping on the way
in and out, so a plan computed for one query is replayed onto any later
isomorphic query — including, trivially, the same query re-submitted.

Thread safe: a single lock guards the table, so one cache can be shared
by every worker of a :class:`~repro.service.batch.BatchEngine`.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Optional,
    Sequence,
    Tuple,
)

from repro.arraytypes import Array
from repro.core.plan import JoinPlan, JoinStep
from repro.core.signature_table import ScanCost, SignatureTable
from repro.graph.labeled_graph import LabeledGraph
from repro.service.fingerprint import QueryFingerprint, query_fingerprint

DEFAULT_CAPACITY = 128


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`PlanCache`.

    ``shape_*`` counters track the candidate-shape memo (see
    :class:`CandidateShapeCache`); they are reported separately and do
    not enter :attr:`lookups` / :attr:`hit_rate`, which keep their
    original join-plan meaning.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    uncacheable: int = 0
    invalidations: int = 0
    shape_hits: int = 0
    shape_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.uncacheable

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when nothing was looked up)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable counter dump (the server metrics layer and
        bench ``--json`` outputs both consume this shape)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "evictions": int(self.evictions),
            "uncacheable": int(self.uncacheable),
            "invalidations": int(self.invalidations),
            "shape_hits": int(self.shape_hits),
            "shape_misses": int(self.shape_misses),
            "lookups": int(self.lookups),
            "hit_rate": float(self.hit_rate),
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Counter-wise sum (aggregating per-batch deltas over time)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            uncacheable=self.uncacheable + other.uncacheable,
            invalidations=self.invalidations + other.invalidations,
            shape_hits=self.shape_hits + other.shape_hits,
            shape_misses=self.shape_misses + other.shape_misses)

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier``."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            uncacheable=self.uncacheable - earlier.uncacheable,
            invalidations=self.invalidations - earlier.invalidations,
            shape_hits=self.shape_hits - earlier.shape_hits,
            shape_misses=self.shape_misses - earlier.shape_misses)


class CandidateShapeCache:
    """LRU memo of filtering-scan outcomes, keyed by signature bytes.

    Two query vertices with the same encoded signature (same vertex
    label, same folded incident edge labels) provably produce the same
    candidate set and the same scan cost against a fixed signature
    table, so repeated query labels can skip the O(|V|) host-side table
    scan entirely.  This is a *host* optimization only: the engine still
    charges the memoized :class:`~repro.core.signature_table.ScanCost`
    to the query's simulated device, so simulated times and transaction
    totals are bit-identical with and without the memo.

    Cached candidate arrays are shared across queries and therefore
    frozen (``writeable=False``); the joining phase never mutates them.

    Entries are only meaningful against the signature table that
    produced them, in two ways: the memo is *bound* to one table object
    (a cached plan is valid on any graph, but cached candidate ids are
    not — :meth:`bind` clears everything when a differently-owned
    engine starts scanning through a shared cache), and any in-place
    mutation of the bound table invalidates every entry — owners (the
    stream engine) must :meth:`clear` on update.

    Thread safe: the owning :class:`PlanCache` passes its own lock so
    shape and plan bookkeeping serialize together.
    """

    #: gsilint GSI003: these fields are only touched under self._lock
    #: (helpers suffixed ``_unlocked`` assume the caller holds it)
    _GUARDED_BY_LOCK = ("_entries", "_owner", "stats")

    def __init__(self, capacity: int = 512,
                 stats: Optional[CacheStats] = None,
                 lock: Optional[threading.Lock] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else CacheStats()
        self._lock = lock if lock is not None else threading.Lock()
        self._entries: "OrderedDict[bytes, Tuple[ScanCost, Array]]" \
            = OrderedDict()
        self._owner: Optional["weakref.ref[SignatureTable]"] = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def bind(self, owner: SignatureTable) -> None:
        """Tie the memo to the signature table it scans.

        Binding to a *different* table drops every entry: candidate
        vertex ids computed against one table are garbage against
        another (e.g. one :class:`PlanCache` shared by engines serving
        different graphs — a safe pattern for plans, which survive the
        rebinding untouched).
        """
        with self._lock:
            current = self._owner() if self._owner is not None else None
            if current is not owner:
                self._entries.clear()
                self._owner = weakref.ref(owner)

    def _owned_by_unlocked(self, owner: Optional[SignatureTable]) -> bool:
        """Ownership check *under the caller's lock*: concurrent scans
        through differently-owned engines may rebind between a caller's
        ``bind`` and its lookups/stores, so every operation re-verifies
        the binding instead of trusting the scan-start bind."""
        if owner is None:
            return True  # direct (single-table) use; no binding check
        return self._owner is not None and self._owner() is owner

    def lookup(self, key: bytes, owner: Optional[SignatureTable] = None
               ) -> Optional[Tuple[ScanCost, Array]]:
        """``(scan_cost, candidates)`` for a signature, or ``None``.

        ``owner`` (the signature table being scanned) guards shared
        caches: a hit is only served while the memo is bound to it.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not self._owned_by_unlocked(owner):
                self.stats.shape_misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.shape_hits += 1
            return entry

    def store(self, key: bytes, scan_cost: ScanCost, candidates: Array,
              owner: Optional[SignatureTable] = None) -> None:
        candidates.setflags(write=False)  # shared across queries
        with self._lock:
            if not self._owned_by_unlocked(owner):
                return  # another table rebound mid-scan; don't pollute
            self._entries[key] = (scan_cost, candidates)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._clear_unlocked()

    def _clear_unlocked(self) -> None:
        """Drop entries without taking the (non-reentrant) lock — for
        owners that already hold it, e.g. :meth:`PlanCache.clear`."""
        self._entries.clear()


def remap_plan(plan: JoinPlan, mapping: Sequence[int]) -> JoinPlan:
    """Translate a plan through a vertex bijection.

    ``mapping[v]`` is the new id of vertex ``v``.  Linking edges are
    re-sorted by ``(edge_label, new vertex id)`` — the order
    :func:`~repro.core.plan.plan_join_order` itself produces (query
    adjacency is laid out sorted by ``(edge_label, neighbor)``) — so a
    round trip through canonical numbering reproduces the original plan
    exactly.
    """
    steps = tuple(
        JoinStep(
            vertex=mapping[step.vertex],
            linking_edges=tuple(sorted(
                ((mapping[w], lab) for w, lab in step.linking_edges),
                key=lambda e: (e[1], e[0]))))
        for step in plan.steps)
    return JoinPlan(start_vertex=mapping[plan.start_vertex], steps=steps)


class PlanCache:
    """LRU cache mapping canonical query fingerprints to join plans.

    Parameters
    ----------
    capacity:
        Maximum number of cached plans; least recently used entries are
        evicted beyond it.
    node_budget:
        Canonicalization budget forwarded to
        :func:`~repro.service.fingerprint.query_fingerprint`; queries
        exceeding it bypass the cache.
    """

    #: gsilint GSI003: these fields are only touched under self._lock
    _GUARDED_BY_LOCK = ("_plans", "_plan_labels", "stats")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 node_budget: Optional[int] = None,
                 shape_capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._node_budget = node_budget
        self._plans: "OrderedDict[str, JoinPlan]" = OrderedDict()
        # digest -> edge labels the plan's scoring depended on, for
        # statistics-shift invalidation under dynamic graphs.
        self._plan_labels: Dict[str, FrozenSet[int]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()
        #: memo of per-signature candidate-set shapes (scan results);
        #: shares this cache's stats object and lock
        self.shapes = CandidateShapeCache(capacity=shape_capacity,
                                          stats=self.stats,
                                          lock=self._lock)

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of the counters (taken under the lock, so
        concurrent workers can't tear a read mid-update)."""
        with self._lock:
            return self.stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def fingerprint(self, query: LabeledGraph) -> Optional[QueryFingerprint]:
        if self._node_budget is None:
            return query_fingerprint(query)
        return query_fingerprint(query, node_budget=self._node_budget)

    # ------------------------------------------------------------------

    def lookup(self, query: LabeledGraph
               ) -> Tuple[Optional[JoinPlan], Optional[QueryFingerprint]]:
        """Plan for ``query`` (renumbered onto it) if one is cached.

        Returns ``(plan, fingerprint)``; ``plan`` is ``None`` on a miss
        and ``fingerprint`` is ``None`` when the query is uncacheable.
        Pass the fingerprint back to :meth:`store` after planning to
        avoid recanonicalizing.
        """
        fp = self.fingerprint(query)
        if fp is None:
            with self._lock:
                self.stats.uncacheable += 1
            return None, None
        with self._lock:
            canonical = self._plans.get(fp.digest)
            if canonical is None:
                self.stats.misses += 1
                return None, fp
            self._plans.move_to_end(fp.digest)
            self.stats.hits += 1
        return remap_plan(canonical, fp.inverse()), fp

    def store(self, fingerprint: QueryFingerprint, plan: JoinPlan,
              edge_labels: Optional[Sequence[int]] = None) -> None:
        """Cache ``plan`` (expressed in its query's numbering) under
        ``fingerprint``, evicting the LRU entry beyond capacity.

        ``edge_labels`` records which data-graph label statistics the
        plan's scoring consulted (the query's edge labels feed
        Algorithm 2's ``freq(l)`` reweighting); a later
        :meth:`invalidate_labels` call with any of them drops the plan.
        """
        canonical = remap_plan(plan, fingerprint.mapping)
        with self._lock:
            self._plans[fingerprint.digest] = canonical
            self._plans.move_to_end(fingerprint.digest)
            if edge_labels is not None:
                self._plan_labels[fingerprint.digest] = \
                    frozenset(int(l) for l in edge_labels)
            else:
                # No metadata for this store: drop any stale label set a
                # previous store left under the same digest, so the plan
                # is invalidated conservatively.
                self._plan_labels.pop(fingerprint.digest, None)
            while len(self._plans) > self.capacity:
                digest, _ = self._plans.popitem(last=False)
                self._plan_labels.pop(digest, None)
                self.stats.evictions += 1

    def invalidate_labels(self, labels: Iterable[int]) -> int:
        """Drop plans whose scoring depended on any of ``labels``.

        Called when a data-graph update shifts edge-label frequencies:
        a cached join order chosen under the old statistics is still
        *correct* for an isomorphic query, but may no longer be the
        order fresh planning would pick.  Plans stored without label
        metadata are dropped conservatively.  Returns the drop count.
        """
        shifted = frozenset(int(l) for l in labels)
        if not shifted:
            return 0
        dropped = 0
        with self._lock:
            for digest in list(self._plans):
                deps = self._plan_labels.get(digest)
                if deps is None or deps & shifted:
                    del self._plans[digest]
                    self._plan_labels.pop(digest, None)
                    dropped += 1
            self.stats.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every cached plan and candidate shape (stats are kept)."""
        with self._lock:
            self._plans.clear()
            self._plan_labels.clear()
            self.shapes._clear_unlocked()  # shares this lock
