"""An LRU cache of join plans keyed by canonical query fingerprints.

Join-order planning (Algorithm 2) is host-side work repeated for every
query even though isomorphic queries always admit the same plan up to
vertex renaming.  The cache stores each plan *in canonical vertex
numbering* and translates it through the fingerprint mapping on the way
in and out, so a plan computed for one query is replayed onto any later
isomorphic query — including, trivially, the same query re-submitted.

Thread safe: a single lock guards the table, so one cache can be shared
by every worker of a :class:`~repro.service.batch.BatchEngine`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.core.plan import JoinPlan, JoinStep
from repro.graph.labeled_graph import LabeledGraph
from repro.service.fingerprint import QueryFingerprint, query_fingerprint

DEFAULT_CAPACITY = 128


@dataclass
class CacheStats:
    """Counters accumulated by a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    uncacheable: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.uncacheable

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 when nothing was looked up)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``earlier``."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
            uncacheable=self.uncacheable - earlier.uncacheable,
            invalidations=self.invalidations - earlier.invalidations)


def remap_plan(plan: JoinPlan, mapping: Sequence[int]) -> JoinPlan:
    """Translate a plan through a vertex bijection.

    ``mapping[v]`` is the new id of vertex ``v``.  Linking edges are
    re-sorted by ``(edge_label, new vertex id)`` — the order
    :func:`~repro.core.plan.plan_join_order` itself produces (query
    adjacency is laid out sorted by ``(edge_label, neighbor)``) — so a
    round trip through canonical numbering reproduces the original plan
    exactly.
    """
    steps = tuple(
        JoinStep(
            vertex=mapping[step.vertex],
            linking_edges=tuple(sorted(
                ((mapping[w], lab) for w, lab in step.linking_edges),
                key=lambda e: (e[1], e[0]))))
        for step in plan.steps)
    return JoinPlan(start_vertex=mapping[plan.start_vertex], steps=steps)


class PlanCache:
    """LRU cache mapping canonical query fingerprints to join plans.

    Parameters
    ----------
    capacity:
        Maximum number of cached plans; least recently used entries are
        evicted beyond it.
    node_budget:
        Canonicalization budget forwarded to
        :func:`~repro.service.fingerprint.query_fingerprint`; queries
        exceeding it bypass the cache.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 node_budget: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._node_budget = node_budget
        self._plans: "OrderedDict[str, JoinPlan]" = OrderedDict()
        # digest -> edge labels the plan's scoring depended on, for
        # statistics-shift invalidation under dynamic graphs.
        self._plan_labels: dict = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._plans)

    def fingerprint(self, query: LabeledGraph) -> Optional[QueryFingerprint]:
        if self._node_budget is None:
            return query_fingerprint(query)
        return query_fingerprint(query, node_budget=self._node_budget)

    # ------------------------------------------------------------------

    def lookup(self, query: LabeledGraph
               ) -> Tuple[Optional[JoinPlan], Optional[QueryFingerprint]]:
        """Plan for ``query`` (renumbered onto it) if one is cached.

        Returns ``(plan, fingerprint)``; ``plan`` is ``None`` on a miss
        and ``fingerprint`` is ``None`` when the query is uncacheable.
        Pass the fingerprint back to :meth:`store` after planning to
        avoid recanonicalizing.
        """
        fp = self.fingerprint(query)
        if fp is None:
            with self._lock:
                self.stats.uncacheable += 1
            return None, None
        with self._lock:
            canonical = self._plans.get(fp.digest)
            if canonical is None:
                self.stats.misses += 1
                return None, fp
            self._plans.move_to_end(fp.digest)
            self.stats.hits += 1
        return remap_plan(canonical, fp.inverse()), fp

    def store(self, fingerprint: QueryFingerprint, plan: JoinPlan,
              edge_labels: Optional[Sequence[int]] = None) -> None:
        """Cache ``plan`` (expressed in its query's numbering) under
        ``fingerprint``, evicting the LRU entry beyond capacity.

        ``edge_labels`` records which data-graph label statistics the
        plan's scoring consulted (the query's edge labels feed
        Algorithm 2's ``freq(l)`` reweighting); a later
        :meth:`invalidate_labels` call with any of them drops the plan.
        """
        canonical = remap_plan(plan, fingerprint.mapping)
        with self._lock:
            self._plans[fingerprint.digest] = canonical
            self._plans.move_to_end(fingerprint.digest)
            if edge_labels is not None:
                self._plan_labels[fingerprint.digest] = \
                    frozenset(int(l) for l in edge_labels)
            else:
                # No metadata for this store: drop any stale label set a
                # previous store left under the same digest, so the plan
                # is invalidated conservatively.
                self._plan_labels.pop(fingerprint.digest, None)
            while len(self._plans) > self.capacity:
                digest, _ = self._plans.popitem(last=False)
                self._plan_labels.pop(digest, None)
                self.stats.evictions += 1

    def invalidate_labels(self, labels) -> int:
        """Drop plans whose scoring depended on any of ``labels``.

        Called when a data-graph update shifts edge-label frequencies:
        a cached join order chosen under the old statistics is still
        *correct* for an isomorphic query, but may no longer be the
        order fresh planning would pick.  Plans stored without label
        metadata are dropped conservatively.  Returns the drop count.
        """
        shifted = frozenset(int(l) for l in labels)
        if not shifted:
            return 0
        dropped = 0
        with self._lock:
            for digest in list(self._plans):
                deps = self._plan_labels.get(digest)
                if deps is None or deps & shifted:
                    del self._plans[digest]
                    self._plan_labels.pop(digest, None)
                    dropped += 1
            self.stats.invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every cached plan (stats are kept)."""
        with self._lock:
            self._plans.clear()
            self._plan_labels.clear()
