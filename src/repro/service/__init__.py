"""Service layer: batch execution and plan caching on top of the engine."""

from repro.service.batch import BatchEngine, BatchItem, BatchReport
from repro.service.fingerprint import QueryFingerprint, query_fingerprint
from repro.service.plan_cache import CacheStats, PlanCache, remap_plan

__all__ = [
    "BatchEngine",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "PlanCache",
    "QueryFingerprint",
    "query_fingerprint",
    "remap_plan",
]
