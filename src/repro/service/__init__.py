"""Service layer: batch execution, plan caching, pluggable executors."""

from repro.service.batch import (
    BatchEngine,
    BatchItem,
    BatchReport,
    json_sanitize,
)
from repro.service.executors import (
    EXECUTOR_KINDS,
    EngineBuildSpec,
    EngineHandle,
    ProcessExecutor,
    QueryExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.service.fingerprint import QueryFingerprint, query_fingerprint
from repro.service.plan_cache import (
    CacheStats,
    CandidateShapeCache,
    PlanCache,
    remap_plan,
)

__all__ = [
    "BatchEngine",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "CandidateShapeCache",
    "EXECUTOR_KINDS",
    "EngineBuildSpec",
    "EngineHandle",
    "PlanCache",
    "ProcessExecutor",
    "QueryExecutor",
    "QueryFingerprint",
    "SerialExecutor",
    "ThreadExecutor",
    "json_sanitize",
    "make_executor",
    "query_fingerprint",
    "remap_plan",
]
