"""Always-on serving front end over the batch service.

A :class:`GSIServer` turns the one-shot
:class:`~repro.service.batch.BatchEngine` into a persistent service
shaped like a modern inference server:

* **Deadline micro-batching.** Arriving queries are coalesced into
  batches of at most ``max_batch`` requests; the first request in a
  forming batch waits at most ``max_delay_ms`` before the batch is
  dispatched regardless of fill.  Batches execute on a worker thread
  through ``BatchEngine.run_batch`` (and therefore through the whole
  existing executor layer — serial / thread / process pool, shm data
  plane included) while the event loop keeps accepting traffic, so the
  next batch fills while the current one runs (continuous batching).
* **In-flight dedup.** Every query is fingerprinted with the plan
  cache's canonical (isomorphism-invariant) fingerprint.  A request
  whose fingerprint matches a query already queued *or executing* joins
  that query's waiter list instead of occupying a batch slot: one
  execution fans its result out to every waiter.  Waiters that
  submitted a byte-identical query share the leader's
  :class:`~repro.core.result.MatchResult` object verbatim; isomorphic
  but differently numbered waiters receive the result translated
  through the two canonical mappings (identical match *sets* under
  renumbering).  Queries the canonicalizer deems uncacheable bypass
  dedup entirely.
* **Admission control.** At most ``max_pending`` distinct queries may
  be queued; beyond that requests are shed immediately with an
  ``overloaded`` status (never silently dropped, never unbounded
  memory).  Dedup followers ride for free — joining an in-flight query
  adds no execution work, so it is never shed.
* **Per-tenant quotas.** An optional token bucket per tenant
  (``quota_rate`` tokens/s refill, ``quota_burst`` capacity) rejects
  over-quota requests with ``quota_exceeded`` and a ``retry_after_ms``
  hint before they touch the queue.
* **SLO metrics.** A :class:`~repro.serve.metrics.ServerMetrics`
  aggregates per-tenant p50/p95/p99 end-to-end latency, queue depth,
  the batch-size histogram, dedup/shed/quota counters and each batch's
  :class:`~repro.service.batch.BatchReport` (plan-cache, storage, and
  simulated-transaction stats), served by the ``stats`` RPC.

Two front doors share one implementation: :meth:`GSIServer.submit` is
the in-process async interface (benchmarks, tests, embedding), and
:meth:`GSIServer.start` optionally binds the newline-delimited-JSON TCP
listener described in :mod:`repro.serve.protocol`.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.result import MatchResult
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.export import prometheus_text
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    query_from_wire,
)
from repro.service.batch import BatchEngine
from repro.service.fingerprint import QueryFingerprint

DEFAULT_MAX_BATCH = 16
DEFAULT_MAX_DELAY_MS = 2.0
DEFAULT_MAX_PENDING = 256
DEFAULT_TENANT = "default"


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s refill, ``burst`` cap.

    ``try_take`` is called from the event loop only, so no lock; the
    clock is injectable for deterministic tests.
    """

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def try_take(self) -> Tuple[bool, float]:
        """``(granted, retry_after_ms)``; refills lazily on each call."""
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate * 1000.0


def translate_result(result: MatchResult,
                     leader_fp: QueryFingerprint,
                     follower_fp: QueryFingerprint) -> MatchResult:
    """Renumber a deduped result onto an isomorphic follower's query.

    Both queries share a canonical form; composing the follower's
    vertex->canonical mapping with the leader's canonical->vertex
    inverse yields the follower->leader vertex bijection, through which
    matches, candidate sizes, and the join order are re-indexed.  The
    match *set* is identical up to that renumbering; simulated
    measurements are shared with the leader (one execution happened).
    Byte-identical queries have identical mappings and are returned
    as-is (the exact same object).
    """
    if follower_fp.mapping == leader_fp.mapping:
        return result
    inv_leader = leader_fp.inverse()  # canonical id -> leader vertex
    f2l = [inv_leader[c] for c in follower_fp.mapping]
    l2f = [0] * len(f2l)
    for v, u in enumerate(f2l):
        l2f[u] = v
    return MatchResult(
        matches=[tuple(m[u] for u in f2l) for m in result.matches],
        elapsed_ms=result.elapsed_ms,
        timed_out=result.timed_out,
        counters=result.counters,
        phases=result.phases,
        candidate_sizes={l2f[u]: size
                         for u, size in result.candidate_sizes.items()},
        join_order=[l2f[u] for u in result.join_order],
        engine=result.engine)


@dataclass
class ServeOutcome:
    """What one submitted request came back with (either front door)."""

    status: str  # "ok" | "error" | "overloaded" | "quota_exceeded"
    result: Optional[MatchResult] = None
    error: Optional[str] = None
    deduped: bool = False
    plan_cached: bool = False
    host_ms: float = 0.0
    retry_after_ms: float = 0.0

    def to_wire(self, request_id) -> dict:
        """The response frame for this outcome (see the protocol)."""
        msg: dict = {"id": request_id, "status": self.status}
        if self.status == "ok":
            assert self.result is not None
            msg.update({
                "matches": [list(m) for m in self.result.matches],
                "num_matches": self.result.num_matches,
                "elapsed_ms": self.result.elapsed_ms,
                "timed_out": self.result.timed_out,
                "plan_cached": self.plan_cached,
                "deduped": self.deduped,
                "host_ms": self.host_ms,
            })
        elif self.status == "error":
            msg["error"] = self.error or "unknown error"
        elif self.status == "quota_exceeded":
            msg["retry_after_ms"] = self.retry_after_ms
        return msg


@dataclass
class _Waiter:
    """One admitted request waiting on a leader's execution."""

    future: "asyncio.Future"
    fingerprint: Optional[QueryFingerprint]
    tenant: str
    arrival: float
    deduped: bool


@dataclass
class _PendingQuery:
    """One distinct in-flight query: a leader plus its dedup waiters."""

    query: LabeledGraph
    fingerprint: Optional[QueryFingerprint]
    arrival: float
    waiters: List[_Waiter] = field(default_factory=list)


class GSIServer:
    """Persistent asyncio serving front end over one ``BatchEngine``.

    Parameters
    ----------
    engine:
        The batch service to execute through (its plan cache, executor,
        and — when configured — sharded backend all apply unchanged).
    max_batch:
        Micro-batch fill target; a batch dispatches as soon as this
        many distinct queries are pending.
    max_delay_ms:
        Deadline: the oldest pending query waits at most this long
        before its (possibly underfull) batch dispatches.
    max_pending:
        Admission bound on queued distinct queries; beyond it requests
        are shed with ``overloaded``.
    quota_rate / quota_burst:
        Optional per-tenant token bucket (tokens/s, bucket capacity).
        ``None`` disables quotas.
    host / port:
        TCP bind address for :meth:`start`; ``port=None`` serves
        in-process only (``submit``).  ``port=0`` binds an ephemeral
        port (tests), readable from :attr:`bound_port` after start.
    """

    def __init__(self, engine: BatchEngine,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_delay_ms: float = DEFAULT_MAX_DELAY_MS,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 quota_rate: Optional[float] = None,
                 quota_burst: Optional[float] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 metrics: Optional[ServerMetrics] = None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms <= 0:
            raise ValueError(
                f"max_delay_ms must be > 0, got {max_delay_ms}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        if quota_rate is not None and quota_rate <= 0:
            raise ValueError(
                f"quota_rate must be > 0, got {quota_rate}")
        if quota_burst is not None and quota_burst < 1:
            raise ValueError(
                f"quota_burst must be >= 1, got {quota_burst}")
        self.engine = engine
        self.max_batch = max_batch
        self.max_delay_ms = float(max_delay_ms)
        self.max_pending = max_pending
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.bound_port: Optional[int] = None

        self._pending: Deque[_PendingQuery] = deque()
        self._inflight: Dict[str, _PendingQuery] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._wakeup: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._connections: Dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the batcher (and the TCP listener when ``port`` set)."""
        if self._running:
            raise RuntimeError("server already started")
        self._running = True
        self._wakeup = asyncio.Event()
        self._batcher = asyncio.create_task(self._batch_loop(),
                                            name="gsi-serve-batcher")
        if self.port is not None:
            self._tcp_server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port)
            self.bound_port = \
                self._tcp_server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain pending batches."""
        if not self._running:
            return
        self._running = False
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        # Server.wait_closed() does not wait for live connections; close
        # their transports and await the handlers so shutdown leaves no
        # orphan tasks behind.
        connections = dict(self._connections)
        for writer in connections.values():
            writer.close()
        if connections:
            await asyncio.gather(*connections,
                                 return_exceptions=True)
        assert self._wakeup is not None
        self._wakeup.set()  # wake the batcher so it can drain and exit
        if self._batcher is not None:
            await self._batcher
            self._batcher = None

    async def __aenter__(self) -> "GSIServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # submission path (shared by TCP and in-process callers)
    # ------------------------------------------------------------------

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.quota_rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            burst = (self.quota_burst if self.quota_burst is not None
                     else max(1.0, self.quota_rate))
            bucket = self._buckets[tenant] = TokenBucket(
                self.quota_rate, burst)
        return bucket

    async def submit(self, query: LabeledGraph,
                     tenant: str = DEFAULT_TENANT) -> ServeOutcome:
        """Admit one query and await its result (in-process front door).

        Must be called from the server's event loop.  Applies, in
        order: per-tenant quota, in-flight dedup, and the admission
        bound; admitted requests resolve when their micro-batch
        completes.
        """
        if not self._running:
            raise RuntimeError("server is not running")
        arrival = time.monotonic()
        self.metrics.record_received(tenant)

        bucket = self._bucket(tenant)
        if bucket is not None:
            granted, retry_after_ms = bucket.try_take()
            if not granted:
                self.metrics.record_quota_rejected(tenant)
                return ServeOutcome(status="quota_exceeded",
                                    retry_after_ms=retry_after_ms)

        fingerprint = self.engine.plan_cache.fingerprint(query)
        digest = fingerprint.digest if fingerprint is not None else None

        leader = self._inflight.get(digest) if digest is not None else None
        if leader is None:
            # A new distinct query: admission control applies.
            if len(self._pending) >= self.max_pending:
                self.metrics.record_shed(tenant)
                return ServeOutcome(status="overloaded")
            leader = _PendingQuery(query=query, fingerprint=fingerprint,
                                   arrival=arrival)
            self._pending.append(leader)
            if digest is not None:
                self._inflight[digest] = leader
            self.metrics.record_queue_depth(len(self._pending))
            deduped = False
        else:
            deduped = True

        loop = asyncio.get_running_loop()
        waiter = _Waiter(future=loop.create_future(),
                         fingerprint=fingerprint, tenant=tenant,
                         arrival=arrival, deduped=deduped)
        leader.waiters.append(waiter)
        self.metrics.record_admitted(tenant, deduped=deduped)
        assert self._wakeup is not None
        self._wakeup.set()
        return await waiter.future

    # ------------------------------------------------------------------
    # micro-batcher
    # ------------------------------------------------------------------

    async def _batch_loop(self) -> None:
        """Coalesce pending queries into deadline micro-batches."""
        assert self._wakeup is not None
        while self._running or self._pending:
            if not self._pending:
                self._wakeup.clear()
                if not self._running:
                    break
                await self._wakeup.wait()
                continue
            deadline = (self._pending[0].arrival
                        + self.max_delay_ms / 1000.0)
            while (self._running
                   and len(self._pending) < self.max_batch):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    break
            batch: List[_PendingQuery] = []
            while self._pending and len(batch) < self.max_batch:
                batch.append(self._pending.popleft())
            self.metrics.record_queue_depth(len(self._pending))
            await self._execute_batch(batch)

    async def _execute_batch(self, batch: List[_PendingQuery]) -> None:
        """Run one micro-batch off-loop and fan results to waiters."""
        queries = [p.query for p in batch]
        loop = asyncio.get_running_loop()
        tracer = get_tracer()
        parent = tracer.current_context()

        def run_traced():
            # The batch runs on a worker thread whose span stack is
            # empty; parent it explicitly so the engine's spans nest
            # under this dispatch instead of rooting a second tree.
            with tracer.span("serve.batch", parent=parent,
                             queries=len(queries)) as span:
                report = self.engine.run_batch(queries)
                span.set_attribute("matches", report.total_matches)
            return report

        try:
            report = await loop.run_in_executor(None, run_traced)
        except Exception as exc:  # noqa: BLE001 - a dead executor pool
            # must fail this batch's waiters, not kill the server.
            self._fan_out_failure(batch,
                                  f"{type(exc).__name__}: {exc}")
            return
        self.metrics.record_batch(report)
        for pending, item in zip(batch, report.items):
            self._retire(pending)
            for waiter in pending.waiters:
                if item.error is not None:
                    outcome = ServeOutcome(status="error",
                                           error=item.error,
                                           deduped=waiter.deduped)
                else:
                    result = item.result
                    if (waiter.deduped
                            and waiter.fingerprint is not None
                            and pending.fingerprint is not None):
                        result = translate_result(
                            result, pending.fingerprint,
                            waiter.fingerprint)
                    outcome = ServeOutcome(
                        status="ok", result=result,
                        plan_cached=item.plan_cached,
                        deduped=waiter.deduped)
                self._resolve(waiter, outcome)

    def _retire(self, pending: _PendingQuery) -> None:
        """Close the dedup window for one executed query."""
        fp = pending.fingerprint
        if fp is not None and self._inflight.get(fp.digest) is pending:
            del self._inflight[fp.digest]

    def _fan_out_failure(self, batch: List[_PendingQuery],
                         message: str) -> None:
        """Batch-wide failure: every waiter hears about it exactly once."""
        for pending in batch:
            self._retire(pending)
            for waiter in pending.waiters:
                self._resolve(waiter, ServeOutcome(
                    status="error", error=message,
                    deduped=waiter.deduped))

    def _resolve(self, waiter: _Waiter, outcome: ServeOutcome) -> None:
        outcome.host_ms = (time.monotonic() - waiter.arrival) * 1000.0
        self.metrics.record_completed(
            waiter.tenant, outcome.host_ms,
            error=outcome.status != "ok")
        if not waiter.future.done():  # client may have disconnected
            waiter.future.set_result(outcome)

    # ------------------------------------------------------------------
    # TCP front door
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """The ``stats`` RPC payload: config + metrics snapshot."""
        return {
            "server": {
                "max_batch": self.max_batch,
                "max_delay_ms": self.max_delay_ms,
                "max_pending": self.max_pending,
                "quota_rate": self.quota_rate,
                "quota_burst": self.quota_burst,
                "executor": getattr(self.engine.executor, "name",
                                    None) if self.engine.executor
                else "per-batch",
                "sharded": self.engine.sharded is not None,
            },
            "metrics": self.metrics.to_dict(),
        }

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Serve one NDJSON connection; requests may be pipelined."""
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._connections[conn_task] = writer
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []

        async def respond(msg: dict) -> None:
            async with write_lock:
                writer.write(encode_message(msg))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_message(line)
                except ProtocolError as exc:
                    await respond({"id": None, "status": "error",
                                   "error": str(exc)})
                    continue
                # Each request is served by its own task so a filling
                # micro-batch never blocks later frames on the same
                # connection (pipelining is what feeds batches).
                tasks.append(asyncio.create_task(
                    self._serve_request(request, respond)))
                tasks = [t for t in tasks if not t.done()]
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            if conn_task is not None:
                self._connections.pop(conn_task, None)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(self, request: dict, respond) -> None:
        request_id = request.get("id")
        op = request.get("op")
        try:
            if op == "ping":
                await respond({"id": request_id, "status": "ok",
                               "pong": True})
                return
            if op == "stats":
                await respond({"id": request_id, "status": "ok",
                               "stats": self.stats()})
                return
            if op == "metrics":
                text = prometheus_text(get_registry().snapshot())
                await respond({"id": request_id, "status": "ok",
                               "text": text})
                return
            if op != "query":
                raise ProtocolError(
                    f"unknown op {op!r}; expected one of "
                    f"('query', 'stats', 'metrics', 'ping')")
            query = query_from_wire(request.get("query"))
            tenant = str(request.get("tenant", DEFAULT_TENANT))
            outcome = await self.submit(query, tenant=tenant)
            await respond(outcome.to_wire(request_id))
        except ProtocolError as exc:
            await respond({"id": request_id, "status": "error",
                           "error": str(exc)})
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; nothing to tell it
