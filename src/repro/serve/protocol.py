"""Wire protocol for the serving subsystem: newline-delimited JSON.

Every message — request or response — is one JSON object on one line,
UTF-8 encoded, terminated by ``\\n``.  The framing is deliberately
primitive: it round-trips through ``nc``/``socat``, every language has a
JSON parser, and an asyncio reader can frame messages with
``readline()`` alone.

Requests
--------

``{"op": "query", "id": 7, "tenant": "alice", "query": {...}}``
    Match one query graph.  ``id`` is an opaque client-chosen
    correlation value echoed back verbatim (clients pipelining several
    requests on one connection need it to pair responses); ``tenant``
    (optional, default ``"default"``) selects the admission quota bucket
    and the per-tenant latency series.
``{"op": "stats", "id": 8}``
    Server-level metrics snapshot (see
    :class:`~repro.serve.metrics.ServerMetrics`).
``{"op": "metrics", "id": 10}``
    Prometheus text exposition of the process metrics registry
    (:func:`repro.obs.export.prometheus_text`); the response carries it
    in ``text``.
``{"op": "ping", "id": 9}``
    Liveness probe.

Query graphs travel as ``{"vertex_labels": [l0, l1, ...],
"edges": [[u, v, label], ...]}`` — exactly the
:class:`~repro.graph.labeled_graph.LabeledGraph` constructor arguments.

Responses
---------

Every response carries the request's ``id`` and a ``status``:

``"ok"``
    The query ran; ``matches`` holds embeddings as lists indexed by
    query vertex id, plus ``elapsed_ms`` (simulated), ``host_ms``
    (arrival-to-completion wall clock), ``plan_cached`` and ``deduped``
    flags.
``"error"``
    The query was rejected or failed mid-execution; ``error`` explains.
``"overloaded"``
    Admission control shed the request (pending queue full).  Back off
    and retry.
``"quota_exceeded"``
    The tenant's token bucket is empty.  Retry after
    ``retry_after_ms``.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph

#: protocol operations a server accepts
OPS = ("query", "stats", "metrics", "ping")

#: response statuses a client must handle
STATUSES = ("ok", "error", "overloaded", "quota_exceeded")


class ProtocolError(ValueError):
    """A message violated the wire protocol (bad JSON, missing fields)."""


def query_to_wire(query: LabeledGraph) -> dict:
    """Serialize a query graph into its wire dict."""
    return {
        "vertex_labels": [int(l) for l in query.vertex_labels.tolist()],
        "edges": [[int(u), int(v), int(lab)]
                  for u, v, lab in query.edges()],
    }


def query_from_wire(obj: dict) -> LabeledGraph:
    """Rebuild a query graph from its wire dict.

    Malformed payloads raise :class:`ProtocolError` — the server turns
    that into a per-request ``"error"`` response instead of dropping
    the connection.
    """
    if not isinstance(obj, dict):
        raise ProtocolError(f"query must be an object, got "
                            f"{type(obj).__name__}")
    labels = obj.get("vertex_labels")
    edges = obj.get("edges", [])
    if not isinstance(labels, list):
        raise ProtocolError("query.vertex_labels must be a list")
    if not isinstance(edges, list):
        raise ProtocolError("query.edges must be a list")
    try:
        return LabeledGraph(labels, [tuple(e) for e in edges])
    except (GraphError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad query graph: {exc}") from exc


def encode_message(obj: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict:
    """Parse one wire frame into a dict, validating the envelope."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def make_request(op: str, request_id, tenant: Optional[str] = None,
                 query: Optional[LabeledGraph] = None) -> dict:
    """Build a request envelope (the client's encoding half)."""
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    msg: dict = {"op": op, "id": request_id}
    if tenant is not None:
        msg["tenant"] = tenant
    if query is not None:
        msg["query"] = query_to_wire(query)
    return msg
