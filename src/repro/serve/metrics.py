"""SLO metrics for the serving subsystem.

One :class:`ServerMetrics` instance aggregates everything an operator
asks a long-lived server: per-tenant end-to-end latency percentiles
(p50/p95/p99 over a bounded reservoir), live queue depth, the
micro-batch size histogram, dedup / load-shed / quota counters, and the
cumulative :class:`~repro.service.plan_cache.CacheStats`, storage
health, and simulated-transaction totals carried by each batch's
:class:`~repro.service.batch.BatchReport`.

Thread safety: the server's asyncio loop records admissions and
completions while the batch runner thread records batch reports, so
every mutation takes the internal lock.  :meth:`to_dict` snapshots
under the same lock and returns only JSON-serializable types (it is the
payload of the ``stats`` RPC verbatim).
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    SIZE_BUCKETS,
    get_registry,
)
from repro.obs.stats import DEFAULT_RESERVOIR, Reservoir, percentile_summary
from repro.service.batch import BatchReport, json_sanitize
from repro.service.plan_cache import CacheStats


def latency_percentiles(samples: List[float]) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` over ``samples`` (ms).

    Thin alias over :func:`repro.obs.stats.percentile_summary`, kept
    for the serving subsystem's historical public name.
    """
    return percentile_summary(samples)


class _TenantSeries:
    """One tenant's bounded latency reservoir plus request counters."""

    __slots__ = ("_latencies", "completed", "errors", "deduped",
                 "shed", "quota_rejected")

    def __init__(self, reservoir: int) -> None:
        self._latencies = Reservoir(reservoir)
        self.completed = 0
        self.errors = 0
        self.deduped = 0
        self.shed = 0
        self.quota_rejected = 0

    @property
    def latencies_ms(self) -> List[float]:
        """The current latency window (a copy, oldest first)."""
        return self._latencies.samples()

    def record_latency(self, latency_ms: float) -> None:
        self._latencies.add(latency_ms)

    def to_dict(self) -> dict:
        return {
            "completed": self.completed,
            "errors": self.errors,
            "deduped": self.deduped,
            "shed": self.shed,
            "quota_rejected": self.quota_rejected,
            "latency_ms": self._latencies.summary(),
        }


class ServerMetrics:
    """Aggregated serving statistics, exposed via the ``stats`` RPC."""

    #: gsilint GSI003: the asyncio loop and the batch-runner thread
    #: both mutate these; every touch goes through self._lock
    #: (helpers suffixed ``_unlocked`` assume the caller holds it)
    _GUARDED_BY_LOCK = (
        "_tenants", "received", "admitted", "completed", "errors",
        "deduped", "shed", "quota_rejected", "batches",
        "executed_queries", "batch_size_histogram", "cache",
        "total_gld", "total_gst", "total_simulated_ms", "last_storage",
        "queue_depth", "max_queue_depth",
    )

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 2:
            raise ValueError(f"reservoir must be >= 2, got {reservoir}")
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._tenants: Dict[str, _TenantSeries] = {}
        # request-plane counters
        self.received = 0
        self.admitted = 0
        self.completed = 0
        self.errors = 0
        self.deduped = 0
        self.shed = 0
        self.quota_rejected = 0
        # execution-plane aggregates
        self.batches = 0
        self.executed_queries = 0
        self.batch_size_histogram: Dict[int, int] = {}
        self.cache = CacheStats()
        self.total_gld = 0
        self.total_gst = 0
        self.total_simulated_ms = 0.0
        self.last_storage: dict = {}
        # live gauge, set by the server as its queue moves
        self.queue_depth = 0
        self.max_queue_depth = 0

    # ------------------------------------------------------------------

    def _tenant_unlocked(self, tenant: str) -> _TenantSeries:
        series = self._tenants.get(tenant)
        if series is None:
            series = self._tenants[tenant] = _TenantSeries(
                self._reservoir)
        return series

    def record_received(self, tenant: str) -> None:
        with self._lock:
            self.received += 1
            self._tenant_unlocked(tenant)

    @staticmethod
    def _obs_outcome(tenant: str, result: str) -> None:
        """Mirror one request outcome into the process obs registry
        (outside :attr:`_lock`; the registry has its own)."""
        get_registry().counter(
            "gsi_serve_requests_total",
            "Serving requests by outcome.").inc(
                1.0, tenant=tenant, result=result)

    def record_admitted(self, tenant: str, deduped: bool) -> None:
        with self._lock:
            self.admitted += 1
            if deduped:
                self.deduped += 1
                self._tenant_unlocked(tenant).deduped += 1
        if deduped:
            self._obs_outcome(tenant, "deduped")

    def record_shed(self, tenant: str) -> None:
        with self._lock:
            self.shed += 1
            self._tenant_unlocked(tenant).shed += 1
        self._obs_outcome(tenant, "shed")

    def record_quota_rejected(self, tenant: str) -> None:
        with self._lock:
            self.quota_rejected += 1
            self._tenant_unlocked(tenant).quota_rejected += 1
        self._obs_outcome(tenant, "quota_rejected")

    def record_completed(self, tenant: str, latency_ms: float,
                         error: bool) -> None:
        with self._lock:
            series = self._tenant_unlocked(tenant)
            series.completed += 1
            series.record_latency(latency_ms)
            self.completed += 1
            if error:
                self.errors += 1
                series.errors += 1
        self._obs_outcome(tenant, "error" if error else "ok")
        get_registry().histogram(
            "gsi_serve_latency_ms",
            "End-to-end serving latency in milliseconds.",
            buckets=LATENCY_BUCKETS_MS).observe(latency_ms,
                                                tenant=tenant)

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)

    def record_batch(self, report: BatchReport) -> None:
        """Fold one executed micro-batch's report into the aggregates."""
        with self._lock:
            self.batches += 1
            self.executed_queries += report.num_queries
            size = report.num_queries
            self.batch_size_histogram[size] = \
                self.batch_size_histogram.get(size, 0) + 1
            self.cache = self.cache.merge(report.cache)
            self.total_gld += report.total_gld
            self.total_gst += report.total_gst
            self.total_simulated_ms += report.total_simulated_ms
            self.last_storage = report.storage
        get_registry().histogram(
            "gsi_serve_batch_fill",
            "Dispatched micro-batch sizes (distinct queries).",
            buckets=SIZE_BUCKETS).observe(float(report.num_queries))

    # ------------------------------------------------------------------

    def dedup_rate(self) -> float:
        """Deduped requests over all admitted requests."""
        with self._lock:
            total = self.admitted
            return self.deduped / total if total else 0.0

    def to_dict(self) -> dict:
        """One JSON-serializable snapshot (the ``stats`` RPC payload)."""
        with self._lock:
            mean_batch = (self.executed_queries / self.batches
                          if self.batches else 0.0)
            all_latencies: List[float] = []
            for series in self._tenants.values():
                all_latencies.extend(series.latencies_ms)
            return json_sanitize({
                "requests": {
                    "received": self.received,
                    "admitted": self.admitted,
                    "completed": self.completed,
                    "errors": self.errors,
                    "deduped": self.deduped,
                    "shed": self.shed,
                    "quota_rejected": self.quota_rejected,
                },
                "queue": {
                    "depth": self.queue_depth,
                    "max_depth": self.max_queue_depth,
                },
                "batches": {
                    "executed": self.batches,
                    "executed_queries": self.executed_queries,
                    "mean_size": mean_batch,
                    "size_histogram": {
                        str(k): v for k, v in
                        sorted(self.batch_size_histogram.items())},
                },
                "latency_ms": latency_percentiles(all_latencies),
                "tenants": {name: series.to_dict()
                            for name, series in
                            sorted(self._tenants.items())},
                "cache": self.cache.to_dict(),
                "transactions": {
                    "gld": self.total_gld,
                    "gst": self.total_gst,
                    "total": self.total_gld + self.total_gst,
                },
                "total_simulated_ms": self.total_simulated_ms,
                "storage": self.last_storage,
            })


__all__ = ["ServerMetrics", "latency_percentiles", "DEFAULT_RESERVOIR"]
