"""Always-on serving subsystem: asyncio front end over the batch service.

See :mod:`repro.serve.server` for the serving semantics (deadline
micro-batching, in-flight dedup, admission control, per-tenant quotas)
and :mod:`repro.serve.protocol` for the NDJSON wire format.
"""

from repro.serve.client import GSIClient
from repro.serve.metrics import ServerMetrics, latency_percentiles
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    make_request,
    query_from_wire,
    query_to_wire,
)
from repro.serve.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_MS,
    DEFAULT_MAX_PENDING,
    GSIServer,
    ServeOutcome,
    TokenBucket,
    translate_result,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_DELAY_MS",
    "DEFAULT_MAX_PENDING",
    "GSIClient",
    "GSIServer",
    "ProtocolError",
    "ServeOutcome",
    "ServerMetrics",
    "TokenBucket",
    "decode_message",
    "encode_message",
    "latency_percentiles",
    "make_request",
    "query_from_wire",
    "query_to_wire",
    "translate_result",
]
