"""Asyncio client for the NDJSON serving protocol.

One :class:`GSIClient` holds one TCP connection and pipelines any
number of concurrent requests over it: each request carries a
client-assigned ``id``, a background reader task pairs response frames
back to their waiting futures, so ``asyncio.gather`` over many
:meth:`GSIClient.query` calls is the natural way to generate load
(exactly what the serving benchmark's open/closed loops do).

Example::

    async with GSIClient("127.0.0.1", 8471) as client:
        response = await client.query(query_graph, tenant="alice")
        if response["status"] == "ok":
            print(response["num_matches"], "matches")
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Dict, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    make_request,
)


class GSIClient:
    """One pipelined NDJSON connection to a :class:`GSIServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiting: Dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()

    # ------------------------------------------------------------------

    async def connect(self) -> "GSIClient":
        if self._writer is not None:
            raise RuntimeError("client already connected")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        self._reader_task = asyncio.create_task(self._read_loop(),
                                                name="gsi-client-reader")
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
        self._fail_waiters(ConnectionError("client closed"))

    async def __aenter__(self) -> "GSIClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------

    def _fail_waiters(self, exc: Exception) -> None:
        waiting, self._waiting = self._waiting, {}
        for future in waiting.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    msg = decode_message(line)
                except ProtocolError:
                    continue  # not ours to crash on; skip bad frame
                future = self._waiting.pop(msg.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(msg)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._fail_waiters(
                ConnectionError("server closed the connection"))

    async def _request(self, msg: dict) -> dict:
        if self._writer is None:
            raise RuntimeError("client is not connected")
        future = asyncio.get_running_loop().create_future()
        self._waiting[msg["id"]] = future
        async with self._write_lock:
            self._writer.write(encode_message(msg))
            await self._writer.drain()
        return await future

    # ------------------------------------------------------------------

    async def query(self, query: LabeledGraph,
                    tenant: Optional[str] = None) -> dict:
        """Submit one query; resolves to its response frame."""
        return await self._request(make_request(
            "query", next(self._ids), tenant=tenant, query=query))

    async def stats(self) -> dict:
        """The server's ``stats`` payload (config + metrics)."""
        response = await self._request(make_request("stats",
                                                    next(self._ids)))
        if response.get("status") != "ok":
            raise ProtocolError(f"stats failed: {response}")
        return response["stats"]

    async def ping(self) -> bool:
        response = await self._request(make_request("ping",
                                                    next(self._ids)))
        return response.get("status") == "ok"
