"""The GSI invariant rules.

Each rule is a function from a :class:`~repro.analysis.engine.FileContext`
to findings, registered under its ``GSI00N`` id.  The rules encode
conventions the test suite can only probe dynamically; see the package
docstring for the catalogue and the motivating PR-era bugs.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import FileContext, Finding, register

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a ``Name`` / dotted ``Attribute``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_self_attr(node: ast.expr, attr: Optional[str] = None) -> bool:
    """``self.<attr>`` (any attr when ``attr`` is None)."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and (attr is None or node.attr == attr))


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _iter_functions(tree: ast.Module
                    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_file(ctx: FileContext, *parts: str) -> bool:
    """True when ``ctx.path`` ends with the given path suffix."""
    path = PurePath(ctx.path)
    return path.parts[-len(parts):] == parts


# ---------------------------------------------------------------------------
# GSI001 — pickling contract
# ---------------------------------------------------------------------------

_GSI001_SINKS = {"map_tasks"}
"""Executor entry points whose first argument crosses a (potential)
process boundary and therefore must be module-level picklable."""


class _LocalCallables(ast.NodeVisitor):
    """Names bound to *locally defined* callables inside one function.

    A nested ``def`` or a ``name = lambda ...`` assignment inside a
    function body produces an object ``pickle`` cannot ship to a worker
    process; passing such a name into an executor sink is exactly the
    bug class the pickling contract in ``service/executors.py`` exists
    to prevent.
    """

    def __init__(self, root: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.names: Set[str] = set()
        for stmt in ast.walk(root):
            if stmt is root:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.names.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)


def _unpicklable_reason(arg: ast.expr, local_names: Set[str]
                        ) -> Optional[str]:
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    if isinstance(arg, ast.Name) and arg.id in local_names:
        return f"locally defined function {arg.id!r}"
    if (isinstance(arg, ast.Call)
            and _terminal_name(arg.func) == "partial" and arg.args):
        return _unpicklable_reason(arg.args[0], local_names)
    return None


@register(
    "GSI001", "pickling-contract",
    "Callables passed into executor sinks (map_tasks) must be "
    "module-level (picklable); ProcessPoolExecutor is only constructed "
    "inside repro/service/executors.py.")
def check_pickling_contract(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for func in _iter_functions(ctx.tree):
        local_names = _LocalCallables(func).names
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name in _GSI001_SINKS and node.args:
                reason = _unpicklable_reason(node.args[0], local_names)
                if reason is not None:
                    findings.append(Finding(
                        "GSI001", ctx.path, node.lineno, node.col_offset,
                        f"{reason} passed into {name}(); executor "
                        f"payload callables must be module-level "
                        f"functions (pickling contract)"))
    if not _is_file(ctx, "service", "executors.py"):
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and _terminal_name(node.func) == "ProcessPoolExecutor"):
                findings.append(Finding(
                    "GSI001", ctx.path, node.lineno, node.col_offset,
                    "ProcessPoolExecutor constructed outside "
                    "repro/service/executors.py; use "
                    "make_executor('process', ...) so the pickling "
                    "contract and pool lifecycle stay centralized"))
    return findings


# ---------------------------------------------------------------------------
# GSI002 — meter-label discipline
# ---------------------------------------------------------------------------

_GSI002_SINKS = {"add_gld"}
"""Meter charge methods accepting a per-phase attribution label."""


@register(
    "GSI002", "meter-label-discipline",
    "Labeled meter charges must use a LABEL_* constant from the "
    "registry in repro/gpusim/constants.py, not a one-off string "
    "literal.")
def check_meter_labels(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if _terminal_name(node.func) not in _GSI002_SINKS:
            continue
        label = _keyword(node, "label")
        if label is None and len(node.args) >= 2:
            label = node.args[1]
        if label is None:
            continue  # unlabeled charge; attribution not claimed
        if isinstance(label, ast.Constant) and isinstance(label.value, str):
            if label.value:
                findings.append(Finding(
                    "GSI002", ctx.path, label.lineno, label.col_offset,
                    f"stringly-typed meter label {label.value!r}; use a "
                    f"LABEL_* constant from repro.gpusim.constants "
                    f"(METER_LABELS registry)"))
        elif _terminal_name(label) is not None:
            terminal = _terminal_name(label)
            assert terminal is not None
            if not terminal.startswith("LABEL_"):
                findings.append(Finding(
                    "GSI002", ctx.path, label.lineno, label.col_offset,
                    f"meter label bound to {terminal!r}; label "
                    f"constants from the registry are named LABEL_*"))
        # anything else (f-string, subscript) is dynamic attribution —
        # allowed; the registry covers the static charge sites.
    return findings


# ---------------------------------------------------------------------------
# GSI003 — lock discipline
# ---------------------------------------------------------------------------

_GUARD_DECL = "_GUARDED_BY_LOCK"
_LOCK_ATTR = "_lock"
_UNLOCKED_SUFFIX = "_unlocked"


def _declared_guards(cls: ast.ClassDef) -> Optional[Set[str]]:
    """Field names a class declares as lock-guarded, or ``None``."""
    for stmt in cls.body:
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = (stmt.target,), stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == _GUARD_DECL:
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    names = set()
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str):
                            names.add(elt.value)
                    return names
    return None


def _with_holds_lock(stmt: ast.With | ast.AsyncWith) -> bool:
    return any(_is_self_attr(item.context_expr, _LOCK_ATTR)
               for item in stmt.items)


def _check_lock_body(body: Sequence[ast.stmt], guarded: Set[str],
                     held: bool, ctx: FileContext, method_name: str,
                     findings: List[Finding]) -> None:
    """Recurse through statements tracking lexical lock possession."""
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner_held = held or _with_holds_lock(stmt)
            for item in stmt.items:
                _check_lock_exprs([item.context_expr], guarded, held,
                                  ctx, method_name, findings)
            _check_lock_body(stmt.body, guarded, inner_held, ctx,
                             method_name, findings)
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly without the lock: treat
            # its body as unlocked regardless of where it is defined.
            _check_lock_body(stmt.body, guarded, False, ctx,
                             method_name, findings)
            continue
        # Generic statements: check expressions at this level, then
        # recurse into compound-statement bodies with `held` unchanged.
        exprs: List[ast.expr] = []
        nested: List[Sequence[ast.stmt]] = []
        for _field_name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                exprs.append(value)
            elif isinstance(value, list):
                if value and isinstance(value[0], ast.stmt):
                    nested.append(value)
                elif value and isinstance(value[0], ast.expr):
                    exprs.extend(value)
                elif value and isinstance(value[0], ast.excepthandler):
                    for handler in value:
                        nested.append(handler.body)
        _check_lock_exprs(exprs, guarded, held, ctx, method_name, findings)
        for block in nested:
            _check_lock_body(block, guarded, held, ctx, method_name,
                             findings)


def _check_lock_exprs(exprs: Sequence[ast.expr], guarded: Set[str],
                      held: bool, ctx: FileContext, method_name: str,
                      findings: List[Finding]) -> None:
    if held:
        return
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if (_is_self_attr(node)
                    and node.attr in guarded):  # type: ignore[union-attr]
                attr = node.attr  # type: ignore[union-attr]
                findings.append(Finding(
                    "GSI003", ctx.path, node.lineno, node.col_offset,
                    f"guarded field self.{attr} touched outside "
                    f"'with self.{_LOCK_ATTR}:' in {method_name}() "
                    f"(declared in {_GUARD_DECL}; suffix the method "
                    f"{_UNLOCKED_SUFFIX} if the caller holds the lock)"))


@register(
    "GSI003", "lock-discipline",
    "Fields declared in a class's _GUARDED_BY_LOCK tuple are only "
    "read or written inside 'with self._lock:' blocks (or inside "
    "*_unlocked helpers whose callers hold the lock).")
def check_lock_discipline(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _declared_guards(node)
        if not guarded:
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__" or stmt.name.endswith(
                    _UNLOCKED_SUFFIX):
                continue
            _check_lock_body(stmt.body, guarded, False, ctx, stmt.name,
                             findings)
    return findings


# ---------------------------------------------------------------------------
# GSI004 — shm lease lifecycle
# ---------------------------------------------------------------------------

_TEARDOWN_METHODS = {"close", "shutdown", "release", "__exit__"}


def _is_publish_call(node: ast.Call) -> bool:
    name = _terminal_name(node.func)
    return name is not None and name.lstrip("_").startswith("publish_")


@register(
    "GSI004", "shm-lease-lifecycle",
    "Classes that publish shared-memory segments must own a teardown "
    "path (close/shutdown/release); SharedMemory(create=True) only "
    "inside repro/storage/shm.py.")
def check_shm_lifecycle(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    in_shm_module = _is_file(ctx, "storage", "shm.py")
    if not in_shm_module:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and _terminal_name(node.func) == "SharedMemory"):
                create = _keyword(node, "create")
                if (isinstance(create, ast.Constant)
                        and create.value is True):
                    findings.append(Finding(
                        "GSI004", ctx.path, node.lineno, node.col_offset,
                        "naked SharedMemory(create=True); segment "
                        "creation (and its unlink lifecycle) lives in "
                        "repro/storage/shm.py only"))
    # Publication sites must belong to a class owning a teardown path.
    class_stack: List[Tuple[ast.ClassDef, Set[str]]] = []

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.ClassDef):
            methods = {s.name for s in node.body
                       if isinstance(s, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))}
            class_stack.append((node, methods))
            for child in ast.iter_child_nodes(node):
                visit(child)
            class_stack.pop()
            return
        if (isinstance(node, ast.Call) and _is_publish_call(node)
                and not in_shm_module):
            if not class_stack:
                findings.append(Finding(
                    "GSI004", ctx.path, node.lineno, node.col_offset,
                    "shm publish call outside any class; publications "
                    "must be owned by an object with a "
                    "close()/shutdown() release path"))
            elif not (class_stack[-1][1] & _TEARDOWN_METHODS):
                cls = class_stack[-1][0]
                findings.append(Finding(
                    "GSI004", ctx.path, node.lineno, node.col_offset,
                    f"class {cls.name} publishes shm segments but "
                    f"defines no teardown method "
                    f"({'/'.join(sorted(_TEARDOWN_METHODS - {'__exit__'}))}); "
                    f"leaked segments outlive the process"))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(ctx.tree)
    return findings


# ---------------------------------------------------------------------------
# GSI005 — numpy dtype discipline
# ---------------------------------------------------------------------------

_GSI005_CONSTRUCTORS = {"array", "zeros", "empty", "full", "arange", "ones"}
_NUMPY_ALIASES = {"np", "numpy"}


@register(
    "GSI005", "numpy-dtype-discipline",
    "NumPy array constructions carry an explicit dtype=; CSR/PCSR "
    "index arrays silently become float64/platform-int otherwise.")
def check_numpy_dtypes(ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _GSI005_CONSTRUCTORS
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES):
            continue
        if _keyword(node, "dtype") is not None:
            continue
        # positional dtype: np.array(x, np.int64) / np.full(shape, v, t)
        positional_dtype = {"array": 2, "full": 3, "ones": 2, "zeros": 2,
                            "empty": 2}.get(func.attr)
        if positional_dtype is not None and len(node.args) >= positional_dtype:
            continue
        findings.append(Finding(
            "GSI005", ctx.path, node.lineno, node.col_offset,
            f"np.{func.attr}(...) without an explicit dtype=; index "
            f"arrays must pin their dtype (CSR/PCSR discipline)"))
    return findings


# ---------------------------------------------------------------------------
# GSI006 — span lifecycle
# ---------------------------------------------------------------------------


def _is_span_call(node: ast.Call) -> bool:
    """``<anything>.span(...)`` — a tracer handing out a span."""
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr == "span")


def _target_key(node: ast.expr) -> Optional[str]:
    """A stable key for a ``name`` or ``self.<attr>`` binding."""
    if isinstance(node, ast.Name):
        return node.id
    if _is_self_attr(node):
        return f"self.{node.attr}"
    return None


def _scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function defs
    (each function is its own span-ownership scope)."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _check_span_scope(scope: ast.AST, ctx: FileContext,
                      findings: List[Finding]) -> None:
    ok_calls: Set[int] = set()
    span_calls: List[ast.Call] = []
    assigned: Dict[str, List[ast.Call]] = {}
    closed: Set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) and _is_span_call(expr):
                    ok_calls.add(id(expr))
        elif isinstance(node, ast.Assign):
            if (isinstance(node.value, ast.Call)
                    and _is_span_call(node.value)):
                for target in node.targets:
                    key = _target_key(target)
                    if key is not None:
                        assigned.setdefault(key, []).append(node.value)
        elif isinstance(node, ast.Return) and node.value is not None:
            if (isinstance(node.value, ast.Call)
                    and _is_span_call(node.value)):
                # Ownership transfers to the caller's scope.
                ok_calls.add(id(node.value))
            else:
                key = _target_key(node.value)
                if key is not None:
                    closed.add(key)
        elif isinstance(node, ast.Call):
            if _is_span_call(node):
                span_calls.append(node)
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in ("end", "__exit__")):
                key = _target_key(func.value)
                if key is not None:
                    closed.add(key)
                elif (isinstance(func.value, ast.Call)
                        and _is_span_call(func.value)):
                    ok_calls.add(id(func.value))
    closed_calls = {id(call) for key in closed
                    for call in assigned.get(key, ())}
    for call in span_calls:
        if id(call) in ok_calls or id(call) in closed_calls:
            continue
        findings.append(Finding(
            "GSI006", ctx.path, call.lineno, call.col_offset,
            "span() call is neither a 'with' context manager nor "
            "explicitly .end()ed (or returned); an unfinished span "
            "never reaches the trace log"))


@register(
    "GSI006", "span-lifecycle",
    "Tracer span() calls are used as context managers ('with "
    "tracer.span(...)'), explicitly closed via .end(), or returned to "
    "the caller; a span that is never ended is dropped from the trace.")
def check_span_lifecycle(ctx: FileContext) -> Iterable[Finding]:
    if _is_file(ctx, "obs", "trace.py"):
        return []  # the tracer itself manufactures spans
    findings: List[Finding] = []
    scopes: List[ast.AST] = [ctx.tree]
    scopes.extend(_iter_functions(ctx.tree))
    for scope in scopes:
        _check_span_scope(scope, ctx, findings)
    return findings
