"""The gsilint rule engine: file walking, suppressions, output, exit codes.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so it runs anywhere the repo runs — including CI containers that
install nothing beyond the test requirements.

Suppression grammar (comments, parsed with :mod:`tokenize` so string
literals can never accidentally suppress):

* ``# gsilint: disable=GSI001`` — suppress the named rule(s) on the
  *line carrying the comment* (comma-separate for several; ``all`` for
  every rule).
* ``# gsilint: disable-file=GSI001`` — suppress for the whole file.

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage / unparseable input.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

#: directories never linted when walking a tree
SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".ruff_cache"}

_SUPPRESS_RE = re.compile(
    r"#\s*gsilint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    path: str
    source: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line ("all" wildcard kept)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the entire file
    file_suppressions: Set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_suppressions or "all" in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(line, set())
        return rule in on_line or "all" in on_line


RuleFunc = Callable[[FileContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered invariant check."""

    rule_id: str
    name: str
    description: str
    check: RuleFunc


_REGISTRY: Dict[str, Rule] = {}


def register(rule_id: str, name: str, description: str
             ) -> Callable[[RuleFunc], RuleFunc]:
    """Class decorator registering ``check`` under ``rule_id``."""

    def wrap(check: RuleFunc) -> RuleFunc:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id, name, description, check)
        return check

    return wrap


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in rule-id order."""
    # Import for the registration side effect; idempotent.
    from repro.analysis import rules as _rules  # noqa: F401
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def _parse_suppressions(source: str
                        ) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract line- and file-level suppressions from comments."""
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            kind, raw = match.groups()
            ids = {part.strip() for part in raw.split(",") if part.strip()}
            if kind == "disable-file":
                whole_file |= ids
            else:
                per_line.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # the ast parse will report the real problem
    return per_line, whole_file


@dataclass
class LintReport:
    """Findings plus the bookkeeping the CLI and tests consume."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tool": "gsilint",
            "files_checked": self.files_checked,
            "parse_errors": list(self.parse_errors),
            "findings": [f.to_dict() for f in self.findings],
        }


def lint_source(source: str, path: str = "<string>",
                rules: Sequence[Rule] | None = None) -> List[Finding]:
    """Lint one source string; raises ``SyntaxError`` on bad input."""
    tree = ast.parse(source, filename=path)
    per_line, whole_file = _parse_suppressions(source)
    ctx = FileContext(path=path, source=source, tree=tree,
                      line_suppressions=per_line,
                      file_suppressions=whole_file)
    chosen = all_rules() if rules is None else rules
    findings: List[Finding] = []
    for rule in chosen:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            if not any(part in SKIP_DIRS for part in candidate.parts):
                yield candidate


def lint_paths(paths: Sequence[str],
               rules: Sequence[Rule] | None = None) -> LintReport:
    """Lint every python file reachable from ``paths``."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append(f"{file_path}: {exc}")
            continue
        report.files_checked += 1
        try:
            report.findings.extend(
                lint_source(source, path=str(file_path), rules=rules))
        except SyntaxError as exc:
            report.parse_errors.append(f"{file_path}: {exc.msg} "
                                       f"(line {exc.lineno})")
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point shared by ``python -m repro.analysis`` and
    ``scripts/gsilint.py``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="gsilint",
        description="AST-based invariant checks for the GSI engine repo.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write a JSON report to PATH ('-' for stdout)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.name}")
            print(f"    {rule.description}")
        return 0

    if args.select:
        wanted = {part.strip() for part in args.select.split(",")
                  if part.strip()}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = tuple(r for r in rules if r.rule_id in wanted)

    report = lint_paths(args.paths, rules=rules)

    if args.json_path:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json_path == "-":
            print(payload)
        else:
            Path(args.json_path).parent.mkdir(parents=True, exist_ok=True)
            Path(args.json_path).write_text(payload + "\n",
                                            encoding="utf-8")
    if args.json_path != "-":
        for finding in report.findings:
            print(finding.format())
        for error in report.parse_errors:
            print(f"error: {error}")
        status = ("clean" if not report.findings and not report.parse_errors
                  else f"{len(report.findings)} finding(s)")
        print(f"gsilint: {report.files_checked} file(s) checked, {status}")
    return report.exit_code
