"""``python -m repro.analysis`` — run the gsilint invariant suite."""

from __future__ import annotations

import sys

from repro.analysis.engine import main

if __name__ == "__main__":
    sys.exit(main())
