"""`gsilint` — repo-specific static analysis for the GSI engine.

The test suite can only *probe* the conventions the subsystems lean on;
this package *proves* the mechanical ones on every file of every PR by
walking the AST.  Each invariant is a named, suppressible rule:

=======  ==================================================================
Rule     Invariant
=======  ==================================================================
GSI001   Pickling contract: nothing crosses a process-executor boundary
         unless it is module-level picklable (no lambdas / locally
         defined functions into ``map_tasks``; no ad-hoc
         ``ProcessPoolExecutor`` outside the executor layer).
GSI002   Meter-label discipline: every labeled ``meter.add_gld`` charge
         uses a ``LABEL_*`` constant from the central registry in
         :mod:`repro.gpusim.constants`, never a one-off string literal.
GSI003   Lock discipline: fields a class declares in ``_GUARDED_BY_LOCK``
         are only touched inside ``with self._lock:`` blocks (or in
         ``*_unlocked`` helpers whose callers hold the lock).
GSI004   Shm lease lifecycle: every class that publishes shared-memory
         segments owns a teardown path (``close``/``shutdown``/
         ``release``); raw ``SharedMemory(create=True)`` only inside
         :mod:`repro.storage.shm`.
GSI005   NumPy dtype discipline: index-array constructions
         (``np.array``/``zeros``/``empty``/``full``/``arange``/``ones``)
         carry an explicit ``dtype=``.
GSI006   Span lifecycle: every ``tracer.span(...)`` call is used as a
         context manager, explicitly ``.end()``ed, or returned to the
         caller — an unfinished span silently vanishes from the trace
         (:mod:`repro.obs.trace` itself is exempt).
=======  ==================================================================

Run it as ``python -m repro.analysis [paths...]`` or
``scripts/gsilint.py``; suppress a single line with
``# gsilint: disable=GSI00N`` or a whole file with
``# gsilint: disable-file=GSI00N``.
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintReport,
    all_rules,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "LintReport",
    "all_rules",
    "lint_paths",
    "lint_source",
]
