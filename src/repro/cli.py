"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``datasets``
    List the built-in dataset stand-ins with their Table III statistics.
``match``
    Run one engine on one dataset workload and print per-query results.
``shootout``
    Run several engines on the same workload (a mini Figure 12 row).

Examples::

    python -m repro.cli datasets
    python -m repro.cli match --dataset watdiv --engine gsi-opt --queries 3
    python -m repro.cli shootout --dataset gowalla --queries 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.reporting import render_table
from repro.bench.runner import baseline_factory, gsi_factory, run_workload
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.graph import datasets
from repro.graph.stats import graph_stats

ENGINE_CHOICES = ["gsi", "gsi-opt", "gsi-baseline", "vf3", "cfl",
                  "ullmann", "turbo", "gpsm", "gunrock"]


def _engine_factory(name: str):
    if name == "gsi":
        return gsi_factory(GSIConfig.gsi())
    if name == "gsi-opt":
        return gsi_factory(GSIConfig.gsi_opt())
    if name == "gsi-baseline":
        return gsi_factory(GSIConfig.baseline())
    return baseline_factory(name)


def cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in datasets.all_names():
        spec = datasets.SPECS[name]
        s = graph_stats(datasets.load(name))
        rows.append([name, spec.graph_type, s.num_vertices, s.num_edges,
                     s.num_vertex_labels, s.num_edge_labels,
                     s.max_degree, f"{s.mean_degree:.1f}"])
    print(render_table(
        "dataset stand-ins (Table III analogs)",
        ["name", "type", "|V|", "|E|", "|LV|", "|LE|", "MD", "avg deg"],
        rows,
        note="paper originals: enron 69K/274K, gowalla 196K/1.9M, "
             "road 14M/16M, WatDiv 10M/109M, DBpedia 22M/170M"))
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    wl = Workload.for_dataset(args.dataset, num_queries=args.queries,
                              query_vertices=args.query_vertices,
                              seed=args.seed)
    factory = _engine_factory(args.engine)
    summary = run_workload(factory, wl, engine_label=args.engine)
    rows = []
    for i, r in enumerate(summary.results):
        rows.append([i, r.num_matches,
                     "timeout" if r.timed_out else f"{r.elapsed_ms:.3f}",
                     r.counters.join_gld, r.counters.gst,
                     r.min_candidate_size])
    print(render_table(
        f"{args.engine} on {args.dataset} "
        f"({args.query_vertices}-vertex queries)",
        ["query", "matches", "ms", "join GLD", "GST", "min |C(u)|"],
        rows,
        note=f"avg {summary.avg_ms:.3f} ms over "
             f"{summary.queries - summary.timeouts} completed queries"))
    return 0


def cmd_shootout(args: argparse.Namespace) -> int:
    wl = Workload.for_dataset(args.dataset, num_queries=args.queries,
                              query_vertices=args.query_vertices,
                              seed=args.seed)
    rows = []
    reference: Optional[int] = None
    agree = True
    for engine in args.engines:
        summary = run_workload(_engine_factory(engine), wl,
                               engine_label=engine)
        if summary.timed_out:
            rows.append([engine, "-", "-", "timeout"])
            continue
        if reference is None:
            reference = summary.total_matches
        elif summary.total_matches != reference:
            agree = False
        rows.append([engine, f"{summary.avg_ms:.3f}",
                     summary.total_matches,
                     f"{summary.timeouts}/{summary.queries} timeouts"])
    print(render_table(
        f"engine shoot-out on {args.dataset}",
        ["engine", "avg ms", "matches", "status"],
        rows,
        note="all completing engines found the same matches"
             if agree else "WARNING: match counts disagree!"))
    return 0 if agree else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="GSI reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset stand-ins")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="gowalla",
                       choices=datasets.all_names())
        p.add_argument("--queries", type=int, default=3)
        p.add_argument("--query-vertices", type=int, default=12)
        p.add_argument("--seed", type=int, default=42)

    m = sub.add_parser("match", help="run one engine on one workload")
    add_workload_args(m)
    m.add_argument("--engine", default="gsi-opt", choices=ENGINE_CHOICES)

    s = sub.add_parser("shootout", help="compare engines on one workload")
    add_workload_args(s)
    s.add_argument("--engines", nargs="+", default=["vf3", "gpsm",
                                                    "gunrock", "gsi-opt"],
                   choices=ENGINE_CHOICES)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "match": cmd_match,
        "shootout": cmd_shootout,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
