"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``datasets``
    List the built-in dataset stand-ins with their Table III statistics.
``match``
    Run one engine on one dataset workload and print per-query results.
``shootout``
    Run several engines on the same workload (a mini Figure 12 row).
``batch``
    Serve a workload through the batch service (worker pool + plan
    cache) and print per-query results plus service-level metrics.
    With ``--shards N`` the workload is served scatter-gather over a
    partitioned, halo-replicated :class:`~repro.shard.ShardedGraph`
    instead of one monolithic engine (identical match sets).
``shard-info``
    Partition one dataset and print the per-shard layout: owned /
    halo vertex counts, edges, and the replication overhead the halo
    costs.
``stream``
    Register continuous queries, replay a random update stream through
    the dynamic subsystem, and print per-batch delta-match results plus
    incremental-maintenance costs.
``serve``
    Run the always-on serving front end: an asyncio NDJSON-over-TCP
    server that micro-batches arriving queries by deadline, dedups
    in-flight identical queries, applies admission control and
    per-tenant quotas, and reports SLO metrics via the ``stats`` RPC
    (see :mod:`repro.serve`).  Runs until interrupted; prints the
    metrics summary on shutdown.
``obs``
    Inspect a span trace recorded with ``--trace-out``: per-span-name
    aggregates, trace-tree connectivity (exit 1 when disconnected),
    and an optional chrome://tracing dump via ``--chrome PATH``.

``batch``, ``stream``, and ``serve`` accept ``--trace-out PATH`` to
record every span the command produces — including spans shipped back
from process-pool workers — as NDJSON under one ``cli.<command>`` root.

Examples::

    python -m repro.cli datasets
    python -m repro.cli match --dataset watdiv --engine gsi-opt --queries 3
    python -m repro.cli shootout --dataset gowalla --queries 3
    python -m repro.cli batch --dataset gowalla --queries 8 --repeat 2
    python -m repro.cli batch --dataset road --shards 4 --partitioner label
    python -m repro.cli shard-info --dataset road --shards 8
    python -m repro.cli stream --dataset enron --batches 5 --batch-size 16
    python -m repro.cli serve --dataset gowalla --port 8471 --max-batch 16
    python -m repro.cli batch --dataset enron --shards 2 \\
        --executor process --trace-out trace.ndjson
    python -m repro.cli obs trace.ndjson --chrome trace.json
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, Iterator, List, Optional

from repro.bench.reporting import render_table
from repro.bench.runner import (
    baseline_factory,
    gsi_factory,
    run_workload,
    run_workload_batched,
)
from repro.bench.workloads import Workload
from repro.core.config import GSIConfig
from repro.graph import datasets
from repro.graph.stats import graph_stats
from repro.obs.export import write_spans_ndjson
from repro.obs.trace import Tracer, set_tracer

ENGINE_CHOICES = ["gsi", "gsi-opt", "gsi-baseline", "vf3", "cfl",
                  "ullmann", "turbo", "gpsm", "gunrock"]

GSI_CONFIGS = {
    "gsi": GSIConfig.gsi,
    "gsi-opt": GSIConfig.gsi_opt,
    "gsi-baseline": GSIConfig.baseline,
}


def _engine_config(args: argparse.Namespace) -> GSIConfig:
    """The selected preset, with the CLI join-kernel override applied."""
    cfg = GSI_CONFIGS[args.engine]()
    join_kernel = getattr(args, "join_kernel", None)
    if join_kernel is not None:
        cfg = replace(cfg, join_kernel=join_kernel)
    return cfg


def _engine_factory(name: str, join_kernel: Optional[str] = None):
    if name in GSI_CONFIGS:
        cfg = GSI_CONFIGS[name]()
        if join_kernel is not None:
            cfg = replace(cfg, join_kernel=join_kernel)
        return gsi_factory(cfg)
    return baseline_factory(name)


def cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in datasets.all_names():
        spec = datasets.SPECS[name]
        s = graph_stats(datasets.load(name))
        rows.append([name, spec.graph_type, s.num_vertices, s.num_edges,
                     s.num_vertex_labels, s.num_edge_labels,
                     s.max_degree, f"{s.mean_degree:.1f}"])
    print(render_table(
        "dataset stand-ins (Table III analogs)",
        ["name", "type", "|V|", "|E|", "|LV|", "|LE|", "MD", "avg deg"],
        rows,
        note="paper originals: enron 69K/274K, gowalla 196K/1.9M, "
             "road 14M/16M, WatDiv 10M/109M, DBpedia 22M/170M"))
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    wl = Workload.for_dataset(args.dataset, num_queries=args.queries,
                              query_vertices=args.query_vertices,
                              seed=args.seed)
    factory = _engine_factory(args.engine,
                              getattr(args, "join_kernel", None))
    summary = run_workload(factory, wl, engine_label=args.engine)
    rows = []
    for i, r in enumerate(summary.results):
        rows.append([i, r.num_matches,
                     "timeout" if r.timed_out else f"{r.elapsed_ms:.3f}",
                     r.counters.join_gld, r.counters.gst,
                     r.min_candidate_size])
    print(render_table(
        f"{args.engine} on {args.dataset} "
        f"({args.query_vertices}-vertex queries)",
        ["query", "matches", "ms", "join GLD", "GST", "min |C(u)|"],
        rows,
        note=f"avg {summary.avg_ms:.3f} ms over "
             f"{summary.queries - summary.timeouts} completed queries"))
    return 0


def cmd_shootout(args: argparse.Namespace) -> int:
    wl = Workload.for_dataset(args.dataset, num_queries=args.queries,
                              query_vertices=args.query_vertices,
                              seed=args.seed)
    rows = []
    reference: Optional[int] = None
    agree = True
    for engine in args.engines:
        summary = run_workload(
            _engine_factory(engine, getattr(args, "join_kernel", None)),
            wl, engine_label=engine)
        if summary.timed_out:
            rows.append([engine, "-", "-", "timeout"])
            continue
        if reference is None:
            reference = summary.total_matches
        elif summary.total_matches != reference:
            agree = False
        rows.append([engine, f"{summary.avg_ms:.3f}",
                     summary.total_matches,
                     f"{summary.timeouts}/{summary.queries} timeouts"])
    print(render_table(
        f"engine shoot-out on {args.dataset}",
        ["engine", "avg ms", "matches", "status"],
        rows,
        note="all completing engines found the same matches"
             if agree else "WARNING: match counts disagree!"))
    return 0 if agree else 1


@contextmanager
def _tracing(args: argparse.Namespace) -> Iterator[None]:
    """Install a recording tracer around one traced CLI command.

    A no-op unless the command was given ``--trace-out PATH``;
    otherwise every span the command records — including spans
    shipped back from process-pool workers — lands in PATH as NDJSON
    when the command finishes, under a single ``cli.<command>`` root.
    """
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        yield
        return
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with tracer.span(f"cli.{args.command}",
                         dataset=getattr(args, "dataset", "")):
            yield
    finally:
        set_tracer(previous)
        spans = tracer.finished()
        write_spans_ndjson(spans, trace_out)
        print(f"trace: {len(spans)} spans -> {trace_out}",
              file=sys.stderr)


def _reject_non_positive(name: str, value: int) -> bool:
    """Print a clear error for a flag that must be >= 1."""
    if value is not None and value < 1:
        print(f"error: {name} must be >= 1, got {value}",
              file=sys.stderr)
        return True
    return False


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.service.executors import make_executor

    if (_reject_non_positive("--workers", args.workers)
            or _reject_non_positive("--cache-capacity",
                                    args.cache_capacity)
            or _reject_non_positive("--shards", args.shards)):
        return 2
    wl = Workload.for_dataset(args.dataset, num_queries=args.queries,
                              query_vertices=args.query_vertices,
                              seed=args.seed)
    if args.repeat > 1:
        # Re-submit the same query set; repeats hit the plan cache.
        wl.queries = wl.queries * args.repeat

    sharded = None
    if args.shards is not None:

        from repro.bench.runner import (
            DEFAULT_MAX_ROWS,
            DEFAULT_THRESHOLD_MS,
        )
        from repro.shard import (
            ShardedEngine,
            ShardedGraph,
            halo_hops_for_query_vertices,
        )
        cfg = replace(_engine_config(args),
                      budget_ms=DEFAULT_THRESHOLD_MS,
                      max_intermediate_rows=DEFAULT_MAX_ROWS)
        sg = ShardedGraph(
            wl.graph, args.shards, partitioner=args.partitioner,
            halo_hops=halo_hops_for_query_vertices(args.query_vertices))
        sharded = ShardedEngine(sg, cfg,
                                cache_capacity=args.cache_capacity)

    with _tracing(args), \
            make_executor(args.executor, args.workers,
                          chunking=args.chunking,
                          data_plane=args.data_plane) as executor:
        summary, report = run_workload_batched(
            wl, config=_engine_config(args),
            engine_label=f"{args.engine}-batch",
            max_workers=args.workers,
            cache_capacity=args.cache_capacity,
            executor=executor,
            sharded=sharded)
    if sharded is not None:
        sharded.close()  # unlink any published shard segments
    rows = []
    for i, item in enumerate(report.items):
        r = item.result
        rows.append([i, r.num_matches,
                     "timeout" if r.timed_out else f"{r.elapsed_ms:.3f}",
                     f"{item.host_ms:.1f}",
                     "hit" if item.plan_cached else "miss"])
    shard_note = ""
    if report.shard is not None:
        info = report.shard.info
        shard_note = (f" | {info.num_shards} shards "
                      f"({info.partitioner}, halo {info.halo_hops}, "
                      f"{info.vertex_replication:.2f}x replication), "
                      f"per-shard tx max/total = "
                      f"{report.shard.max_shard_transactions}/"
                      f"{report.shard.total_transactions}")
    print(render_table(
        f"batch service: {args.engine} on {args.dataset} "
        f"({args.executor} executor, {args.workers} workers, "
        f"cache {args.cache_capacity})",
        ["query", "matches", "sim ms", "host ms", "plan"],
        rows,
        note=report.summary_line() + shard_note))
    return 0


def cmd_shard_info(args: argparse.Namespace) -> int:
    from repro.shard import ShardedGraph, halo_hops_for_query_vertices

    if _reject_non_positive("--shards", args.shards):
        return 2
    graph = datasets.load(args.dataset)
    halo = halo_hops_for_query_vertices(args.query_vertices)
    sg = ShardedGraph(graph, args.shards, partitioner=args.partitioner,
                      halo_hops=halo)
    info = sg.info()
    rows = []
    for shard in sg.shards:
        total = shard.num_owned + shard.num_halo
        rows.append([shard.shard_id, shard.num_owned, shard.num_halo,
                     total, shard.graph.num_edges,
                     f"{total / max(1, graph.num_vertices):.2f}"])
    print(render_table(
        f"shard layout: {args.dataset} over {args.shards} shards "
        f"({args.partitioner} partitioner, halo {halo} for "
        f"{args.query_vertices}-vertex queries)",
        ["shard", "owned", "halo", "|V|", "|E|", "frac of G"],
        rows,
        note=f"replication: {info.vertex_replication:.2f}x vertices, "
             f"{info.edge_replication:.2f}x edges over "
             f"|V|={graph.num_vertices} |E|={graph.num_edges}; every "
             f"query of radius <= {halo} is answered shard-locally"))
    return 0


def _reject_non_positive_float(name: str, value) -> bool:
    """Print a clear error for a flag that must be > 0."""
    if value is not None and value <= 0:
        print(f"error: {name} must be > 0, got {value}",
              file=sys.stderr)
        return True
    return False


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.serve import GSIServer
    from repro.service import BatchEngine
    from repro.service.executors import make_executor

    if (_reject_non_positive("--port", args.port)
            or _reject_non_positive("--max-batch", args.max_batch)
            or _reject_non_positive("--max-pending", args.max_pending)
            or _reject_non_positive("--workers", args.workers)
            or _reject_non_positive("--cache-capacity",
                                    args.cache_capacity)
            or _reject_non_positive_float("--max-delay-ms",
                                          args.max_delay_ms)
            or _reject_non_positive_float("--quota-rate",
                                          args.quota_rate)
            or _reject_non_positive_float("--quota-burst",
                                          args.quota_burst)):
        return 2
    graph = datasets.load(args.dataset)

    async def _run() -> None:
        with make_executor(args.executor, args.workers,
                           data_plane=args.data_plane) as executor:
            engine = BatchEngine(graph, _engine_config(args),
                                 cache_capacity=args.cache_capacity,
                                 executor=executor)
            server = GSIServer(
                engine, max_batch=args.max_batch,
                max_delay_ms=args.max_delay_ms,
                max_pending=args.max_pending,
                quota_rate=args.quota_rate,
                quota_burst=args.quota_burst,
                host=args.host, port=args.port)
            async with server:
                print(f"serving {args.dataset} ({args.engine}, "
                      f"{args.executor} executor) on "
                      f"{args.host}:{server.bound_port} | "
                      f"max_batch={args.max_batch} "
                      f"max_delay_ms={args.max_delay_ms} "
                      f"max_pending={args.max_pending} "
                      f"quota={args.quota_rate or 'off'}",
                      flush=True)
                stop = asyncio.Event()
                loop = asyncio.get_running_loop()
                for sig in (signal.SIGINT, signal.SIGTERM):
                    loop.add_signal_handler(sig, stop.set)
                await stop.wait()
                print("shutting down: draining pending batches...",
                      flush=True)
            print(json.dumps(server.stats(), indent=2, sort_keys=True))

    with _tracing(args):
        asyncio.run(_run())
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    from repro.dynamic import (
        StreamEngine,
        full_rebuild_transactions,
        random_update_stream,
    )
    from repro.graph.generators import query_workload
    from repro.service.executors import make_executor

    if _reject_non_positive("--workers", args.workers):
        return 2
    graph = datasets.load(args.dataset)
    rows = []
    total_tx = 0
    total_commit_tx = 0
    health = {}
    with _tracing(args), \
            make_executor(args.executor, args.workers,
                          data_plane=args.data_plane) as executor:
        engine = StreamEngine(graph, _engine_config(args),
                              compact_dead_ratio=args.compact_dead_ratio,
                              executor=executor)
        queries = query_workload(graph, args.queries,
                                 args.query_vertices, seed=args.seed)
        qids = [engine.register(q) for q in queries]
        initial = sum(len(engine.matches(qid)) for qid in qids)

        stream = random_update_stream(
            graph, num_batches=args.batches, batch_size=args.batch_size,
            seed=args.seed, delete_fraction=args.delete_fraction)
        for delta in stream:
            report = engine.apply_batch(delta)
            tx = report.maintenance.gld + report.maintenance.gst
            total_tx += tx
            total_commit_tx += report.commit_transactions
            health = report.pcsr
            live = sum(d.num_matches
                       for d in report.query_deltas.values())
            rows.append([report.batch_index,
                         f"+{report.num_inserted}/-{report.num_deleted}",
                         report.num_new_vertices,
                         f"+{report.total_created}/"
                         f"-{report.total_destroyed}",
                         live, report.commit_transactions, tx,
                         report.rebuilds, report.compactions,
                         report.plans_invalidated,
                         f"{report.wall_ms:.1f}"])
    engine.close()  # unlink any published snapshot segments
    rebuild_tx = full_rebuild_transactions(
        engine.graph, signature_bits=engine.config.signature_bits,
        gpn=engine.config.gpn)
    print(render_table(
        f"stream: {args.queries} continuous queries on {args.dataset} "
        f"({args.batches} batches x {args.batch_size} updates, "
        f"{args.executor} executor)",
        ["batch", "edges", "+V", "matches", "live", "commit tx",
         "maint tx", "rebuilds", "compact", "plans inv", "ms"],
        rows,
        note=f"{initial} initial matches | commits {total_commit_tx} tx "
             f"(O(changes) CSR splice) + maintenance {total_tx} tx "
             f"over the stream vs "
             f"{rebuild_tx * args.batches} tx for rebuild-per-batch | "
             f"PCSR health: dead {health.get('total_dead_words', 0)}/"
             f"{health.get('total_ci_words', 0)} ci words "
             f"({100.0 * float(health.get('dead_ratio', 0.0)):.1f}%), "
             f"max occupancy "
             f"{float(health.get('max_occupancy', 0.0)):.2f}, "
             f"{health.get('compactions', 0)} compactions, "
             f"{health.get('rebuilds', 0)} rebuilds"))
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.export import (
        read_spans_ndjson,
        validate_span_tree,
        write_chrome_trace,
    )

    try:
        spans = read_spans_ndjson(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    tree = validate_span_tree(spans)
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(str(span["name"]), []).append(
            float(span["duration_ms"]))
    rows = []
    for name in sorted(by_name):
        durations = by_name[name]
        rows.append([name, len(durations),
                     f"{sum(durations):.2f}",
                     f"{max(durations):.2f}"])
    pids = sorted({int(span.get("pid", 0)) for span in spans})
    verdict = "connected" if tree["connected"] else "DISCONNECTED"
    print(render_table(
        f"span trace: {args.trace}",
        ["span", "count", "total ms", "max ms"],
        rows,
        note=f"{tree['spans']} spans | "
             f"{len(tree['trace_ids'])} trace ids | "
             f"{len(tree['roots'])} roots | "
             f"{len(tree['orphans'])} orphans | "
             f"{len(pids)} processes | {verdict}"))
    if args.chrome:
        path = write_chrome_trace(spans, args.chrome)
        print(f"chrome trace -> {path}")
    return 0 if tree["connected"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="GSI reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list dataset stand-ins")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="gowalla",
                       choices=datasets.all_names())
        p.add_argument("--queries", type=int, default=3)
        p.add_argument("--query-vertices", type=int, default=12)
        p.add_argument("--seed", type=int, default=42)

    def add_join_kernel_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--join-kernel", default=None,
                       choices=["rows", "vector", "numba"],
                       help="host-side join lane (default: config/"
                            "GSI_JOIN_KERNEL); all lanes give identical "
                            "matches and simulated transactions")

    def add_trace_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="record a span trace of this command and "
                            "write it to PATH as NDJSON (inspect with "
                            "'python -m repro.cli obs PATH')")

    m = sub.add_parser("match", help="run one engine on one workload")
    add_workload_args(m)
    m.add_argument("--engine", default="gsi-opt", choices=ENGINE_CHOICES)
    add_join_kernel_arg(m)

    s = sub.add_parser("shootout", help="compare engines on one workload")
    add_workload_args(s)
    s.add_argument("--engines", nargs="+", default=["vf3", "gpsm",
                                                    "gunrock", "gsi-opt"],
                   choices=ENGINE_CHOICES)
    add_join_kernel_arg(s)

    b = sub.add_parser("batch",
                       help="serve one workload via the batch service")
    add_workload_args(b)
    b.add_argument("--engine", default="gsi-opt",
                   choices=sorted(GSI_CONFIGS))
    b.add_argument("--workers", type=int, default=4)
    b.add_argument("--executor", default="thread",
                   choices=["serial", "thread", "process"],
                   help="how the joining phase runs: in-process loop, "
                        "thread pool, or process pool (true multi-core)")
    b.add_argument("--cache-capacity", type=int, default=256)
    add_join_kernel_arg(b)
    b.add_argument("--repeat", type=int, default=1,
                   help="submit the query set this many times "
                        "(repeats exercise the plan cache)")
    b.add_argument("--shards", type=int, default=None,
                   help="serve scatter-gather over this many "
                        "partitioned, halo-replicated shards instead "
                        "of one monolithic engine")
    b.add_argument("--partitioner", default="hash",
                   choices=["hash", "label"],
                   help="vertex ownership: block-hash or edge-label-"
                        "balancing assignment")
    b.add_argument("--chunking", default="static",
                   choices=["static", "cost"],
                   help="process-executor batch chunking: equal-count "
                        "slices or candidate-size-balanced bins")
    b.add_argument("--data-plane", default="shm",
                   choices=["shm", "pickle"],
                   help="how the process executor ships the data graph "
                        "to workers: shared-memory handles (O(handle) "
                        "bytes per batch) or full pickles (legacy "
                        "baseline)")
    add_trace_arg(b)

    si = sub.add_parser("shard-info",
                        help="partition a dataset and print the "
                             "per-shard layout + replication overhead")
    si.add_argument("--dataset", default="gowalla",
                    choices=datasets.all_names())
    si.add_argument("--shards", type=int, default=4)
    si.add_argument("--partitioner", default="hash",
                    choices=["hash", "label"])
    si.add_argument("--query-vertices", type=int, default=12,
                    help="query size the halo depth must cover")

    st = sub.add_parser("stream",
                        help="continuous queries over an update stream")
    add_workload_args(st)
    # gsi-baseline is excluded: the stream engine maintains PCSR in
    # place, so it needs a PCSR-backed config.
    st.add_argument("--engine", default="gsi",
                    choices=["gsi", "gsi-opt"])
    st.add_argument("--batches", type=int, default=5)
    st.add_argument("--batch-size", type=int, default=16)
    st.add_argument("--workers", type=int, default=4)
    st.add_argument("--executor", default="serial",
                    choices=["serial", "thread", "process"],
                    help="how per-query delta matching runs across the "
                         "registered continuous queries")
    st.add_argument("--data-plane", default="shm",
                    choices=["shm", "pickle"],
                    help="how the process executor ships the snapshot "
                         "to workers: shared-memory handles or full "
                         "pickles (legacy baseline)")
    st.add_argument("--delete-fraction", type=float, default=0.3)
    st.add_argument("--compact-dead-ratio", type=float, default=0.25,
                    help="compact a PCSR partition's ci region in place "
                         "when dead words exceed this fraction")
    add_join_kernel_arg(st)
    add_trace_arg(st)

    sv = sub.add_parser("serve",
                        help="run the always-on serving front end "
                             "(asyncio NDJSON-over-TCP micro-batching "
                             "server)")
    sv.add_argument("--dataset", default="gowalla",
                    choices=datasets.all_names())
    sv.add_argument("--engine", default="gsi-opt",
                    choices=sorted(GSI_CONFIGS))
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8471)
    sv.add_argument("--max-batch", type=int, default=16,
                    help="dispatch a micro-batch once this many "
                         "distinct queries are pending")
    sv.add_argument("--max-delay-ms", type=float, default=2.0,
                    help="deadline: the oldest pending query waits at "
                         "most this long before its batch dispatches")
    sv.add_argument("--max-pending", type=int, default=256,
                    help="admission bound; beyond it requests are shed "
                         "with an 'overloaded' status")
    sv.add_argument("--quota-rate", type=float, default=None,
                    help="per-tenant token-bucket refill (queries/s); "
                         "omit to disable quotas")
    sv.add_argument("--quota-burst", type=float, default=None,
                    help="per-tenant token-bucket capacity (defaults "
                         "to max(1, quota-rate))")
    sv.add_argument("--workers", type=int, default=4)
    sv.add_argument("--executor", default="thread",
                    choices=["serial", "thread", "process"],
                    help="how each micro-batch's joining phase runs")
    sv.add_argument("--cache-capacity", type=int, default=256)
    add_join_kernel_arg(sv)
    sv.add_argument("--data-plane", default="shm",
                    choices=["shm", "pickle"],
                    help="process-executor data plane")
    add_trace_arg(sv)

    ob = sub.add_parser("obs",
                        help="inspect a span trace recorded with "
                             "--trace-out: per-span aggregates, tree "
                             "connectivity, optional chrome://tracing "
                             "dump")
    ob.add_argument("trace",
                    help="NDJSON span log written by --trace-out")
    ob.add_argument("--chrome", default=None, metavar="PATH",
                    help="also write a chrome://tracing / Perfetto "
                         "JSON dump to PATH")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "match": cmd_match,
        "shootout": cmd_shootout,
        "batch": cmd_batch,
        "shard-info": cmd_shard_info,
        "stream": cmd_stream,
        "serve": cmd_serve,
        "obs": cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
