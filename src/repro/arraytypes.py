"""Shared ndarray type aliases for the strict-typed packages.

mypy's ``disallow_any_generics`` (part of ``--strict``) rejects bare
``np.ndarray`` annotations; these aliases keep signatures readable while
satisfying it.  ``Array`` is deliberately dtype-agnostic — the *dtype*
discipline for CSR/PCSR index arrays is enforced where it can actually
be checked, at construction sites, by gsilint rule GSI005 (explicit
``dtype=`` on every ``np.array``/``zeros``/``empty``/...).  The narrower
aliases are for new code that wants to state intent in the signature.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

Array = npt.NDArray[Any]
"""An ndarray of unspecified dtype (most engine signatures)."""

IntArray = npt.NDArray[np.int64]
"""Vertex-id / offset arrays (the CSR index dtype)."""

UInt32Array = npt.NDArray[np.uint32]
"""Packed signature words."""

UInt64Array = npt.NDArray[np.uint64]
"""PCSR pair codes and hashed block ids."""

BoolArray = npt.NDArray[np.bool_]
"""Membership / candidate masks."""

FloatArray = npt.NDArray[np.float64]
"""Latency samples and cost estimates."""

__all__ = [
    "Array",
    "IntArray",
    "UInt32Array",
    "UInt64Array",
    "BoolArray",
    "FloatArray",
]
