"""Factory for neighbor stores, used by engine configs and benchmarks."""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.errors import StorageError
from repro.graph.labeled_graph import LabeledGraph
from repro.storage.base import NeighborStore
from repro.storage.basic import BasicRepresentation
from repro.storage.compressed import CompressedRepresentation
from repro.storage.csr import CSRStorage
from repro.storage.pcsr import PCSRStorage

_KINDS: Dict[str, Type[NeighborStore]] = {
    "csr": CSRStorage,
    "basic": BasicRepresentation,
    "compressed": CompressedRepresentation,
    "pcsr": PCSRStorage,
}


def storage_kinds() -> List[str]:
    """All registered storage kinds, Table II order."""
    return ["csr", "basic", "compressed", "pcsr"]


def build_storage(kind: str, graph: LabeledGraph,
                  **kwargs: Any) -> NeighborStore:
    """Build a neighbor store of the given ``kind`` over ``graph``.

    ``kwargs`` are forwarded (e.g. ``gpn=`` for PCSR).
    """
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise StorageError(
            f"unknown storage kind {kind!r}; choose from {sorted(_KINDS)}"
        ) from None
    return cls(graph, **kwargs)
