"""Compressed Representation (Figure 11b): per-label CSR + binary search.

Each edge-label partition stores only its own (non-consecutive) vertex ids
in a sorted "vertex ID" layer; locating ``N(v, l)`` binary-searches that
layer.  Space drops to O(|E|) but locating costs
``ceil(log2(|V(G,l)| + 1)) + 2`` transactions (Section IV).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.gpusim.transactions import contiguous_read
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import partition_by_edge_label
from repro.storage.base import EMPTY, NeighborStore


class _PerLabelCompressed:
    """One label's compressed CSR: vertex-id layer + offsets + ci."""

    def __init__(self, items: List[Tuple[int, Array]]) -> None:
        self.vertex_ids = np.array([v for v, _ in items], dtype=np.int64)
        degrees = np.array([len(nbrs) for _, nbrs in items], dtype=np.int64)
        self.offsets = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(degrees, out=self.offsets[1:])
        chunks = [nbrs for _, nbrs in items]
        self.ci = (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=np.int64))

    def find(self, v: int) -> int:
        """Index of ``v`` in the vertex-id layer, or -1."""
        pos = int(np.searchsorted(self.vertex_ids, v))
        if pos < len(self.vertex_ids) and self.vertex_ids[pos] == v:
            return pos
        return -1

    def neighbors(self, v: int) -> Array:
        pos = self.find(v)
        if pos < 0:
            return EMPTY
        return self.ci[self.offsets[pos]:self.offsets[pos + 1]]


class CompressedRepresentation(NeighborStore):
    """All edge-label partitions with binary-searched vertex-id layers."""

    kind = "compressed"

    def __init__(self, graph: LabeledGraph) -> None:
        self._tables: Dict[int, _PerLabelCompressed] = {}
        for lab, part in partition_by_edge_label(graph).items():
            self._tables[lab] = _PerLabelCompressed(part.items())

    def neighbors(self, v: int, label: int) -> Array:
        table = self._tables.get(label)
        if table is None:
            return EMPTY
        return table.neighbors(v)

    def locate_transactions(self, v: int, label: int) -> int:
        table = self._tables.get(label)
        if table is None:
            return 0
        # Paper: ceil(log2(|V(G,l)| + 1)) + 2 transactions — the binary
        # search probes plus the offset pair fetch.
        n = len(table.vertex_ids)
        return int(math.ceil(math.log2(n + 1))) + 2 if n else 1

    def read_transactions(self, v: int, label: int) -> int:
        return contiguous_read(len(self.neighbors(v, label)))

    def space_words(self) -> int:
        total = 0
        for table in self._tables.values():
            total += (len(table.vertex_ids) + len(table.offsets)
                      + len(table.ci))
        return total
