"""PCSR: the paper's GPU-friendly storage structure (Definition 4, Alg. 1).

For each edge-label partition ``P(G, l)``, the row-offset layer becomes an
array of hash *groups*.  Each group holds up to ``GPN - 1`` key pairs
``(vertex, offset)`` plus one trailing ``(GID, END)`` pair: ``GID`` chains
to the group holding this group's overflow keys (-1 if none) and ``END``
closes the last key's neighbor extent.  With ``GPN = 16`` a group is
exactly 128 bytes, so one warp reads a whole group in a single memory
transaction — which is how PCSR achieves O(1)-transaction ``N(v, l)``.

The number of groups equals the number of vertices in the partition (a
one-to-one hash), and Claim 1 guarantees overflowing groups always find
enough empty groups to chain into.

**Incremental maintenance.**  The hash-group layout is exactly what makes
PCSR dynamic-friendly: a new key goes into the first free slot of its
home-group chain (or a chain extension through an empty group, the same
mechanism Claim 1 relies on), and neighbor lists grow in place because
each group owns a contiguous *region* of ``ci`` with slack at the tail.
:meth:`PCSRPartition.insert_key`, :meth:`PCSRPartition.append_neighbors`
and :meth:`PCSRPartition.remove_neighbor` implement this; every operation
keeps :meth:`PCSRPartition.validate` clean and meters its simulated
memory transactions so incremental-vs-rebuild cost is measurable.  When
the partition outgrows its hash (occupancy) or the empty-group pool runs
dry (Claim 1 can no longer be honored), callers are expected to rebuild —
see :class:`repro.dynamic.index.DynamicPCSRStorage` for the policy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.errors import StorageError
from repro.gpusim.constants import LABEL_PCSR_COMPACT, LABEL_PCSR_MAINTAIN
from repro.gpusim.meter import MemoryMeter
from repro.gpusim.transactions import contiguous_read
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import EdgeLabelPartition, partition_by_edge_label
from repro.storage.base import EMPTY, NeighborStore

_EMPTY_SLOT = -1
_NO_OVERFLOW = -1

#: multiplicative (Knuth) hash constant for spreading vertex ids
_HASH_MULT = 2654435761


def default_hash(v: int, num_groups: int) -> int:
    """The one-to-one hash mapping vertex ids to group ids."""
    return ((v * _HASH_MULT) & 0xFFFFFFFF) % num_groups


class PCSRPartition:
    """PCSR structure for a single edge-label partition (Definition 4).

    Attributes
    ----------
    groups:
        int64 array of shape ``(num_groups, GPN, 2)``; slot ``[g, j]`` is
        the pair ``(v, ov)`` for ``j < GPN-1`` (``v == -1`` marks unused)
        and ``(GID, END)`` for ``j == GPN-1``.
    ci:
        Column-index layer holding all neighbor lists back to back.
    """

    def __init__(self, partition: EdgeLabelPartition, gpn: int = 16) -> None:
        if not 2 <= gpn <= 16:
            raise StorageError(f"GPN must be in [2, 16], got {gpn}")
        self.gpn = gpn
        self.label = partition.label
        items = partition.items()
        self.num_groups = max(1, len(items))
        self.groups = np.full((self.num_groups, gpn, 2), _EMPTY_SLOT,
                              dtype=np.int64)
        self.groups[:, gpn - 1, 0] = _NO_OVERFLOW

        # --- Algorithm 1, lines 3-4: hash every key to a home group. ---
        keyed: List[List[int]] = [[] for _ in range(self.num_groups)]
        for v, _ in items:
            keyed[default_hash(v, self.num_groups)].append(v)

        capacity = gpn - 1
        # --- Lines 5-8: resolve overflow through empty groups. ---
        placed: List[List[int]] = [ks[:capacity] for ks in keyed]
        overflow: List[Tuple[int, List[int]]] = [
            (gid, ks[capacity:]) for gid, ks in enumerate(keyed)
            if len(ks) > capacity
        ]
        empty_pool = [gid for gid, ks in enumerate(keyed) if not ks]
        chain_next: Dict[int, int] = {}
        for origin, spill in overflow:
            current = origin
            while spill:
                if not empty_pool:
                    raise StorageError(
                        "ran out of empty groups resolving overflow; "
                        "Claim 1 violated (this is a bug)")
                target = empty_pool.pop()
                chain_next[current] = target
                placed[target] = spill[:capacity]
                spill = spill[capacity:]
                current = target

        # --- Lines 9-13: lay out ci and record offsets. ---
        adjacency = {v: nbrs for v, nbrs in items}
        chunks: List[Array] = []
        pos = 0
        self._region_start = np.zeros(self.num_groups, dtype=np.int64)
        self._region_cap = np.zeros(self.num_groups, dtype=np.int64)
        for gid in range(self.num_groups):
            self._region_start[gid] = pos
            for j, v in enumerate(placed[gid]):
                nbrs = adjacency[v]
                self.groups[gid, j, 0] = v
                self.groups[gid, j, 1] = pos
                chunks.append(nbrs)
                pos += len(nbrs)
            self.groups[gid, gpn - 1, 1] = pos  # END flag
            self.groups[gid, gpn - 1, 0] = chain_next.get(gid, _NO_OVERFLOW)
            self._region_cap[gid] = pos - self._region_start[gid]
        self._ci_buf = (np.concatenate(chunks) if chunks
                        else np.empty(0, dtype=np.int64))
        self._ci_len = int(pos)
        self._keys_per_group = [len(p) for p in placed]
        #: groups with no keys and no chain membership — the reservoir
        #: Claim 1 draws from, both at build time and incrementally.
        self._empty_pool = set(empty_pool)
        #: ci words orphaned by region relocations (space overhead of
        #: in-place maintenance; a rebuild reclaims them).
        self._dead_words = 0

    @property
    def ci(self) -> Array:
        """Column-index layer (the live prefix of the growable buffer)."""
        return self._ci_buf[:self._ci_len]

    # ------------------------------------------------------------------
    # Lookup (the 4-step procedure under Figure 11c)
    # ------------------------------------------------------------------

    def _probe(self, v: int) -> Tuple[int, int, int]:
        """Walk the group chain for ``v``.

        Returns ``(groups_read, begin, end)`` with ``begin == end == -1``
        if ``v`` is not in this partition.
        """
        gid = default_hash(v, self.num_groups)
        reads = 0
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    begin = int(group[j, 1])
                    if j + 1 < self.gpn - 1 and group[j + 1, 0] != _EMPTY_SLOT:
                        end = int(group[j + 1, 1])
                    else:
                        end = int(group[self.gpn - 1, 1])
                    return reads, begin, end
            gid = int(group[self.gpn - 1, 0])
        return reads, -1, -1

    def neighbors(self, v: int) -> Array:
        """``N(v, l)`` from the PCSR layout (not the source graph)."""
        _, begin, end = self._probe(v)
        if begin < 0:
            return EMPTY
        return self.ci[begin:end]

    def probe_transactions(self, v: int) -> int:
        """Groups read to locate ``v`` — each is one 128 B transaction
        when ``GPN = 16`` (one warp, one transaction per group).

        Misses cost their actual probe reads: the home group is always
        read, and a miss that walks an overflow chain pays one
        transaction per chained group before concluding ``v`` is absent.
        """
        reads, _, _ = self._probe(v)
        return reads

    # ------------------------------------------------------------------
    # Incremental maintenance (the dynamic-graph update path)
    # ------------------------------------------------------------------

    def _find_key(self, v: int) -> Tuple[int, int, int]:
        """Locate the slot holding ``v``: ``(reads, gid, slot)`` with
        ``gid == -1`` when ``v`` is not stored."""
        gid = default_hash(v, self.num_groups)
        reads = 0
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    return reads, gid, j
            gid = int(group[self.gpn - 1, 0])
        return reads, -1, -1

    def _slot_extent(self, gid: int, j: int) -> Tuple[int, int]:
        """ci extent ``[begin, end)`` of the key at ``(gid, slot j)``."""
        begin = int(self.groups[gid, j, 1])
        if j + 1 < self.gpn - 1 and self.groups[gid, j + 1, 0] != _EMPTY_SLOT:
            end = int(self.groups[gid, j + 1, 1])
        else:
            end = int(self.groups[gid, self.gpn - 1, 1])
        return begin, end

    def _grow_ci(self, extra: int) -> None:
        """Ensure the ci buffer has room for ``extra`` more words."""
        need = self._ci_len + extra
        if need <= len(self._ci_buf):
            return
        new_cap = max(need, 2 * len(self._ci_buf), 16)
        buf = np.full(new_cap, _EMPTY_SLOT, dtype=np.int64)
        buf[:self._ci_len] = self._ci_buf[:self._ci_len]
        self._ci_buf = buf

    def _relocate_group(self, gid: int, extra: int,
                        meter: Optional[MemoryMeter]) -> None:
        """Move ``gid``'s ci region to the tail of ci with ``extra``
        words of fresh slack, orphaning the old region."""
        start = int(self._region_start[gid])
        end = int(self.groups[gid, self.gpn - 1, 1])
        used = end - start
        new_cap = used + max(extra, used, 4)
        self._grow_ci(new_cap)
        new_start = self._ci_len
        if used:
            self._ci_buf[new_start:new_start + used] = \
                self._ci_buf[start:end]
        delta = new_start - start
        for j in range(self.gpn - 1):
            if self.groups[gid, j, 0] == _EMPTY_SLOT:
                break
            self.groups[gid, j, 1] += delta
        self.groups[gid, self.gpn - 1, 1] = new_start + used
        self._dead_words += int(self._region_cap[gid])
        self._region_start[gid] = new_start
        self._region_cap[gid] = new_cap
        self._ci_len = new_start + new_cap
        if meter is not None:
            moved = contiguous_read(used)
            meter.add_gld(moved, label=LABEL_PCSR_MAINTAIN)
            meter.add_gst(moved + 1)  # stream the region + group rewrite

    def _region_slack(self, gid: int) -> int:
        end = int(self.groups[gid, self.gpn - 1, 1])
        return int(self._region_start[gid] + self._region_cap[gid] - end)

    def insert_key(self, v: int, neighbors: Array,
                   meter: Optional[MemoryMeter] = None) -> bool:
        """Place a *new* key ``v`` with its sorted neighbor list.

        Walks the home-group chain for a free key slot; when the whole
        chain is full, extends it through an empty group exactly as
        Algorithm 1 does (Claim 1's mechanism).  Returns ``False`` when
        no empty group remains — the caller must rebuild the partition
        (the hash is no longer one-to-one enough to honor Claim 1).
        """
        nbrs = np.sort(np.asarray(neighbors, dtype=np.int64))
        gid = default_hash(v, self.num_groups)
        reads = 0
        target = -1
        last = gid
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    raise StorageError(
                        f"key {v} already present; use append_neighbors")
            if target < 0 and self._keys_per_group[gid] < self.gpn - 1:
                target = gid
            last = gid
            gid = int(group[self.gpn - 1, 0])
        if meter is not None:
            meter.add_gld(reads, label=LABEL_PCSR_MAINTAIN)
        if target < 0:
            # Chain full end to end: extend it through an empty group.
            if not self._empty_pool:
                return False
            target = self._empty_pool.pop()
            self.groups[last, self.gpn - 1, 0] = target
            # Fresh region at the ci tail for the new chain link.
            self._grow_ci(0)
            self._region_start[target] = self._ci_len
            self._region_cap[target] = 0
            self.groups[target, self.gpn - 1, 1] = self._ci_len
            if meter is not None:
                meter.add_gst(1)  # rewrite the chained-from group

        if self._region_slack(target) < len(nbrs):
            self._relocate_group(target, len(nbrs), meter)
        end = int(self.groups[target, self.gpn - 1, 1])
        slot = self._keys_per_group[target]
        if len(nbrs):
            self._ci_buf[end:end + len(nbrs)] = nbrs
        self.groups[target, slot, 0] = v
        self.groups[target, slot, 1] = end
        self.groups[target, self.gpn - 1, 1] = end + len(nbrs)
        self._keys_per_group[target] += 1
        # A group with a key is no longer a Claim-1 reservoir candidate.
        self._empty_pool.discard(target)
        if meter is not None:
            meter.add_gst(1 + contiguous_read(len(nbrs)))
        return True

    def append_neighbors(self, v: int, new_neighbors: Array,
                         meter: Optional[MemoryMeter] = None) -> None:
        """Merge ``new_neighbors`` into existing key ``v``'s list.

        Later slots in the group shift right inside the region (slack
        permitting); otherwise the whole region relocates to the ci
        tail.  The list stays sorted, so lookups still binary-search.
        """
        reads, gid, j = self._find_key(v)
        if meter is not None:
            meter.add_gld(reads, label=LABEL_PCSR_MAINTAIN)
        if gid < 0:
            raise StorageError(f"key {v} not present; use insert_key")
        begin, end = self._slot_extent(gid, j)
        current = self._ci_buf[begin:end]
        merged = np.union1d(current, np.asarray(new_neighbors,
                                                dtype=np.int64))
        delta = len(merged) - (end - begin)
        if delta and self._region_slack(gid) < delta:
            self._relocate_group(gid, max(delta, len(merged)), meter)
            begin, end = self._slot_extent(gid, j)
        group_end = int(self.groups[gid, self.gpn - 1, 1])
        if delta:
            # Shift the later slots' lists right by delta.
            tail = self._ci_buf[end:group_end].copy()
            self._ci_buf[end + delta:group_end + delta] = tail
            for k in range(j + 1, self.gpn - 1):
                if self.groups[gid, k, 0] == _EMPTY_SLOT:
                    break
                self.groups[gid, k, 1] += delta
            self.groups[gid, self.gpn - 1, 1] = group_end + delta
        self._ci_buf[begin:begin + len(merged)] = merged
        if meter is not None:
            meter.add_gld(contiguous_read(end - begin),
                          label=LABEL_PCSR_MAINTAIN)
            meter.add_gst(1 + contiguous_read(len(merged))
                          + contiguous_read(max(0, group_end - end)))

    def remove_neighbor(self, v: int, w: int,
                        meter: Optional[MemoryMeter] = None) -> None:
        """Delete ``w`` from ``v``'s neighbor list in place.

        Later lists in the group shift left one word; the freed word
        becomes region slack.  A key whose list empties keeps its slot
        with a zero-length extent (keys are never evicted in place — a
        rebuild compacts them away).
        """
        reads, gid, j = self._find_key(v)
        if meter is not None:
            meter.add_gld(reads, label=LABEL_PCSR_MAINTAIN)
        if gid < 0:
            raise StorageError(f"key {v} not present in partition")
        begin, end = self._slot_extent(gid, j)
        seg = self._ci_buf[begin:end]
        pos = int(np.searchsorted(seg, w))
        if pos >= len(seg) or seg[pos] != w:
            raise StorageError(f"{w} is not a neighbor of {v}")
        group_end = int(self.groups[gid, self.gpn - 1, 1])
        self._ci_buf[begin + pos:group_end - 1] = \
            self._ci_buf[begin + pos + 1:group_end].copy()
        for k in range(j + 1, self.gpn - 1):
            if self.groups[gid, k, 0] == _EMPTY_SLOT:
                break
            self.groups[gid, k, 1] -= 1
        self.groups[gid, self.gpn - 1, 1] = group_end - 1
        if meter is not None:
            meter.add_gld(contiguous_read(group_end - begin),
                          label=LABEL_PCSR_MAINTAIN)
            meter.add_gst(1 + contiguous_read(group_end - 1 - begin - pos))

    def _merge_delta(self, v: int, current: Array,
                     adds: Optional[Array],
                     removes: Optional[Array]) -> Array:
        """``(current \\ removes) ∪ adds`` as a new sorted-unique array;
        raises (before any structural mutation) if a remove target is
        absent, matching :meth:`remove_neighbor`.

        Deltas are typically one or two edges per key, so this leans on
        binary search (``current`` is sorted-unique) instead of the
        much heavier ``isin``/``union1d`` set machinery.
        """
        merged = current
        if removes is not None and len(removes):
            rem = np.asarray(removes, dtype=np.int64)
            if len(rem) > 1:
                rem = np.unique(rem)
            if not len(merged):
                raise StorageError(
                    f"{int(rem[0])} is not a neighbor of {v}")
            pos = np.searchsorted(merged, rem)
            present = merged[np.minimum(pos, len(merged) - 1)] == rem
            if not present.all():
                missing = int(rem[int(np.argmin(present))])
                raise StorageError(f"{missing} is not a neighbor of {v}")
            merged = np.delete(merged, pos)
        if adds is not None and len(adds):
            add = np.asarray(adds, dtype=np.int64)
            if len(add) > 1:
                add = np.unique(add)
            pos = np.searchsorted(merged, add)
            if len(merged):
                fresh = (pos >= len(merged)) \
                    | (merged[np.minimum(pos, len(merged) - 1)] != add)
            else:
                fresh = np.ones(len(add), dtype=bool)
            if fresh.any():
                merged = np.insert(merged, pos[fresh], add[fresh])
        if merged is current:
            merged = current.copy()
        return merged

    def _bulk_merge(self, touched: List[int],
                    located: Dict[int, Tuple[int, int]],
                    inserts: Dict[int, Array],
                    deletes: Dict[int, Array]
                    ) -> Dict[int, Array]:
        """Merged neighbor lists for every touched key, computed as one
        global sorted merge over ``i * M + w`` pair codes.  Read-only:
        raises :class:`StorageError` on a delete of an absent neighbor
        without having mutated anything."""
        cur_arrays: List[Array] = []
        cur_owner: List[int] = []
        rem_arrays: List[Array] = []
        rem_owner: List[int] = []
        add_arrays: List[Array] = []
        add_owner: List[int] = []
        top = 0
        for i, v in enumerate(touched):
            if v in located:
                gid, j = located[v]
                begin, end = self._slot_extent(gid, j)
                seg = self._ci_buf[begin:end]
                if len(seg):
                    cur_arrays.append(seg)
                    cur_owner.append(i)
                    top = max(top, int(seg[-1]))
            for bucket, arrays, owners in ((deletes, rem_arrays,
                                            rem_owner),
                                           (inserts, add_arrays,
                                            add_owner)):
                arr = bucket.get(v)
                if arr is not None and len(arr):
                    arr = np.asarray(arr, dtype=np.int64)
                    arrays.append(arr)
                    owners.append(i)
                    top = max(top, int(arr.max()))
        M = top + 1
        if len(touched) > (2 ** 62) // max(M, 1):
            # Pair codes would overflow int64; take the per-key path.
            out: Dict[int, Array] = {}
            for v in touched:
                if v in located:
                    gid, j = located[v]
                    begin, end = self._slot_extent(gid, j)
                    current = self._ci_buf[begin:end]
                else:
                    current = EMPTY
                out[v] = self._merge_delta(v, current, inserts.get(v),
                                           deletes.get(v))
            return out

        def codes(arrays: List[Array], owners: List[int],
                  presorted: bool) -> Array:
            if not arrays:
                return EMPTY
            code = (np.repeat(np.asarray(owners, dtype=np.int64),
                              [len(a) for a in arrays]) * M
                    + np.concatenate(arrays))
            return code if presorted else np.sort(code)

        cur_code = codes(cur_arrays, cur_owner, presorted=True)
        rem_code = codes(rem_arrays, rem_owner, presorted=False)
        add_code = codes(add_arrays, add_owner, presorted=False)

        if len(rem_code):
            pos = (np.searchsorted(cur_code, rem_code)
                   if len(cur_code) else None)
            present = (cur_code[np.minimum(pos, len(cur_code) - 1)]
                       == rem_code if pos is not None
                       else np.zeros(len(rem_code), dtype=bool))
            if not present.all():
                bad = int(rem_code[int(np.argmin(present))])
                raise StorageError(f"{bad % M} is not a neighbor of "
                                   f"{touched[bad // M]}")
            keep = np.ones(len(cur_code), dtype=bool)
            keep[pos] = False
            kept = cur_code[keep]
        else:
            kept = cur_code
        if len(add_code):
            add_code = np.unique(add_code)
            if len(kept):
                pos = np.searchsorted(kept, add_code)
                fresh = (kept[np.minimum(pos, len(kept) - 1)]
                         != add_code)
            else:
                pos = np.zeros(len(add_code), dtype=np.int64)
                fresh = np.ones(len(add_code), dtype=bool)
            merged_code = np.insert(kept, pos[fresh], add_code[fresh])
        else:
            merged_code = kept
        counts = np.bincount(merged_code // M, minlength=len(touched))
        vals = merged_code % M
        bounds = np.concatenate(([0], np.cumsum(counts)))
        return {v: vals[bounds[i]:bounds[i + 1]]
                for i, v in enumerate(touched)}

    def apply_bulk(self, inserts: Dict[int, Array],
                   deletes: Dict[int, Array],
                   meter: Optional[MemoryMeter] = None) -> bool:
        """Apply a whole batch delta in one pass (GPMA-style bulk update).

        ``inserts`` / ``deletes`` map keys to neighbor arrays to merge in
        or strip out.  Instead of one chain walk plus one region
        shift/relocation per edge, this walks each touched key's chain
        once, then performs a single sorted merge + rewrite per affected
        group region — the bulk analogue of segment-wise GPMA updates.

        Returns ``False`` (with the partition **unmodified**) when new
        keys cannot be placed without violating Claim 1; the caller
        rebuilds, exactly as for :meth:`insert_key`.  Raises
        :class:`StorageError` (also before mutating) when a delete
        targets a missing key or neighbor.
        """
        touched = sorted(set(inserts) | set(deletes))
        if not touched:
            return True
        gpn = self.gpn
        capacity = gpn - 1

        # Phase 1: one chain walk per touched key.
        reads = 0
        located: Dict[int, Tuple[int, int]] = {}
        new_keys: List[int] = []
        for v in touched:
            r, gid, j = self._find_key(v)
            reads += r
            if gid >= 0:
                located[v] = (gid, j)
            elif v in deletes:
                raise StorageError(f"key {v} not present in partition")
            else:
                new_keys.append(v)
        if meter is not None:
            meter.add_gld(reads, label=LABEL_PCSR_MAINTAIN)

        # Phase 2 (dry run): place new keys along their home chains,
        # extending through empty groups when full — without mutating,
        # so Claim-1 starvation leaves the structure untouched.
        pending: Dict[int, int] = {}
        planned_next: Dict[int, int] = {}
        pool = set(self._empty_pool) if new_keys else set()
        placements: List[Tuple[int, int]] = []  # (v, target gid)
        for v in new_keys:
            cur = default_hash(v, self.num_groups)
            target = -1
            while True:
                free = (capacity - self._keys_per_group[cur]
                        - pending.get(cur, 0))
                if free > 0:
                    target = cur
                    break
                nxt = planned_next.get(
                    cur, int(self.groups[cur, gpn - 1, 0]))
                if nxt == _NO_OVERFLOW:
                    break
                cur = nxt
            if target < 0:
                if not pool:
                    return False  # nothing mutated yet; caller rebuilds
                target = pool.pop()
                planned_next[cur] = target
            pending[target] = pending.get(target, 0) + 1
            placements.append((v, target))
            pool.discard(target)

        # Phase 3 (still read-only): one global sorted merge across all
        # touched keys, raising on bad deletes before any write happens.
        # (key-index, neighbor) pairs are encoded as ``i * M + w``; the
        # per-key ci segments are sorted-unique and visited in index
        # order, so the current stream is already globally sorted and
        # every per-key set-op collapses into a handful of whole-batch
        # array ops — the GPMA bulk merge proper.
        merged = self._bulk_merge(touched, located, inserts, deletes)

        # Phase 4: commit — chain extensions, then one rewrite per
        # affected group region.
        gst = 0
        for last, target in planned_next.items():
            self.groups[last, gpn - 1, 0] = target
            self._grow_ci(0)
            self._region_start[target] = self._ci_len
            self._region_cap[target] = 0
            self.groups[target, gpn - 1, 1] = self._ci_len
            self._empty_pool.discard(target)
            gst += 1  # rewrite of the chained-from group
        new_by_gid: Dict[int, List[int]] = {}
        for v, target in placements:
            self._empty_pool.discard(target)
            new_by_gid.setdefault(target, []).append(v)

        affected = sorted({gid for gid, _ in located.values()}
                          | set(new_by_gid))
        moved_read = 0
        for gid in affected:
            # Fast path: one touched key, no new keys, region slack
            # suffices — shift the tail in place instead of rewriting
            # the whole region (the common sparse-batch shape).  The
            # metered cost is the same either way: the bulk model
            # charges a region merge per affected group.
            new_here = new_by_gid.get(gid, ())
            nkeys = int(self._keys_per_group[gid])
            touched_slots = [j for j in range(nkeys)
                             if int(self.groups[gid, j, 0]) in merged]
            if not new_here and len(touched_slots) == 1:
                j = touched_slots[0]
                arr = merged[int(self.groups[gid, j, 0])]
                begin, end = self._slot_extent(gid, j)
                delta = len(arr) - (end - begin)
                old_used = (int(self.groups[gid, gpn - 1, 1])
                            - int(self._region_start[gid]))
                if delta > 0 and self._region_slack(gid) < delta:
                    # Metered below with the same region-merge formula
                    # as the general path, so the accounting does not
                    # depend on which branch ran.
                    self._relocate_group(gid, max(delta, len(arr)),
                                         None)
                    begin, end = self._slot_extent(gid, j)
                group_end = int(self.groups[gid, gpn - 1, 1])
                if delta:
                    tail = self._ci_buf[end:group_end].copy()
                    self._ci_buf[end + delta:group_end + delta] = tail
                    for k in range(j + 1, gpn - 1):
                        if self.groups[gid, k, 0] == _EMPTY_SLOT:
                            break
                        self.groups[gid, k, 1] += delta
                    self.groups[gid, gpn - 1, 1] = group_end + delta
                if len(arr):
                    self._ci_buf[begin:begin + len(arr)] = arr
                moved_read += contiguous_read(old_used)
                gst += contiguous_read(old_used + delta) + 1
                continue
            keys: List[int] = []
            arrays: List[Array] = []
            for j in range(self._keys_per_group[gid]):
                v = int(self.groups[gid, j, 0])
                keys.append(v)
                if v in merged:
                    arrays.append(merged[v])
                else:
                    begin, end = self._slot_extent(gid, j)
                    arrays.append(self._ci_buf[begin:end])
            for v in new_by_gid.get(gid, ()):
                keys.append(v)
                arrays.append(merged[v])
            old_start = int(self._region_start[gid])
            old_used = int(self.groups[gid, gpn - 1, 1]) - old_start
            lens = np.array([len(a) for a in arrays], dtype=np.int64)
            total = int(lens.sum())
            # Concatenate into a fresh buffer first: the sources may be
            # views into the very region being rewritten.
            region = (np.concatenate(arrays) if total
                      else np.empty(0, dtype=np.int64))
            if total <= self._region_cap[gid]:
                pos = old_start
            else:
                new_cap = total + max(total, 4)
                self._grow_ci(new_cap)
                pos = self._ci_len
                self._dead_words += int(self._region_cap[gid])
                self._region_start[gid] = pos
                self._region_cap[gid] = new_cap
                self._ci_len = pos + new_cap
            self._ci_buf[pos:pos + total] = region
            n = len(keys)
            if n:
                self.groups[gid, :n, 0] = keys
                self.groups[gid, :n, 1] = pos + np.concatenate(
                    ([0], np.cumsum(lens[:-1])))
            self.groups[gid, gpn - 1, 1] = pos + total
            self._keys_per_group[gid] = n
            moved_read += contiguous_read(old_used)
            gst += contiguous_read(total) + 1
        if meter is not None:
            meter.add_gld(moved_read, label=LABEL_PCSR_MAINTAIN)
            meter.add_gst(gst)
        return True

    def items(self) -> Iterator[Tuple[int, Array]]:
        """Iterate ``(key, neighbor array)`` straight off the structure
        (rebuilds and tests read the partition back through this)."""
        for gid in range(self.num_groups):
            for j in range(self.gpn - 1):
                v = int(self.groups[gid, j, 0])
                if v == _EMPTY_SLOT:
                    break
                begin, end = self._slot_extent(gid, j)
                yield v, self._ci_buf[begin:end].copy()

    def key_count(self) -> int:
        """Number of stored keys (vertices with a slot)."""
        return int(sum(self._keys_per_group))

    def occupancy(self) -> float:
        """Keys per group — 1.0 is the one-to-one design point of
        Algorithm 1; incremental inserts push it above that, and the
        rebuild policy caps how far."""
        return self.key_count() / self.num_groups

    def dead_words(self) -> int:
        """ci words orphaned by region relocations since the last build."""
        return self._dead_words

    def dead_ratio(self) -> float:
        """Fraction of the ci layer that is orphaned dead space."""
        return self._dead_words / self._ci_len if self._ci_len else 0.0

    def compact(self, meter: Optional[MemoryMeter] = None,
                max_groups: Optional[int] = None) -> int:
        """Slide live ci regions left over the dead space.

        Regions are processed in layout order, so each destination is at
        or before its source and the move is safe in place; per-region
        slack is dropped (the next append re-creates it by relocation).
        After a full sweep ``dead_words() == 0`` and the ci layer is
        exactly the live neighbor lists.

        ``max_groups`` bounds the pause: at most that many region
        *moves* are performed per call (already-packed prefix regions
        are skipped for free), and the sweep stops early once the budget
        is spent.  A bounded call leaves the structure fully valid —
        a packed prefix followed by untouched regions — and returns 0;
        repeated calls make progress until one completes the sweep and
        reclaims the tail.  Metered like every other maintenance op
        (label ``pcsr_compact``).  Returns the number of words
        reclaimed (0 unless the sweep completed).
        """
        old_len = self._ci_len
        order = np.argsort(self._region_start, kind="stable")
        pos = 0
        moved = 0
        groups_rewritten = 0
        complete = True
        for gid in order:
            gid = int(gid)
            start = int(self._region_start[gid])
            end = int(self.groups[gid, self.gpn - 1, 1])
            used = end - start
            if pos != start:
                if max_groups is not None and groups_rewritten >= max_groups:
                    complete = False
                    break
                if used:
                    self._ci_buf[pos:pos + used] = \
                        self._ci_buf[start:end].copy()
                    moved += used
                delta = pos - start
                for j in range(self.gpn - 1):
                    if self.groups[gid, j, 0] == _EMPTY_SLOT:
                        break
                    self.groups[gid, j, 1] += delta
                self.groups[gid, self.gpn - 1, 1] = pos + used
                groups_rewritten += 1
            self._region_start[gid] = pos
            self._region_cap[gid] = used
            pos += used
        if meter is not None:
            meter.add_gld(contiguous_read(moved), label=LABEL_PCSR_COMPACT)
            meter.add_gst(contiguous_read(moved) + groups_rewritten)
        if not complete:
            return 0
        self._ci_len = pos
        self._dead_words = 0
        return old_len - pos

    def stats(self) -> Dict[str, float]:
        """Health counters for this partition (monitoring surface)."""
        return {
            "label": self.label,
            "num_groups": self.num_groups,
            "keys": self.key_count(),
            "occupancy": self.occupancy(),
            "load_factor": self.load_factor(),
            "ci_words": self._ci_len,
            "dead_words": self._dead_words,
            "dead_ratio": self.dead_ratio(),
            "max_chain_length": self.max_chain_length(),
        }

    def max_chain_length(self) -> int:
        """Longest overflow chain (expected <= 1 + 5log|V|/loglog|V|)."""
        longest = 1
        for gid in range(self.num_groups):
            length = 1
            cur = int(self.groups[gid, self.gpn - 1, 0])
            while cur != _NO_OVERFLOW:
                length += 1
                cur = int(self.groups[cur, self.gpn - 1, 0])
            longest = max(longest, length)
        return longest

    def validate(self) -> List[str]:
        """Structural invariant check; returns human-readable violations.

        Invariants of Definition 4: key slots fill contiguously from
        slot 0; offsets are non-decreasing in layout order and bounded
        by ``len(ci)``; every GID points at a real group (or -1); chains
        are acyclic; every key hashes (transitively) to the group chain
        that holds it.
        """
        problems: List[str] = []
        gpn = self.gpn
        for gid in range(self.num_groups):
            group = self.groups[gid]
            seen_empty = False
            prev_offset = -1
            for j in range(gpn - 1):
                v, ov = int(group[j, 0]), int(group[j, 1])
                if v == _EMPTY_SLOT:
                    seen_empty = True
                    continue
                if seen_empty:
                    problems.append(f"group {gid}: key after empty slot")
                if not 0 <= ov <= len(self.ci):
                    problems.append(f"group {gid} slot {j}: offset {ov} "
                                    f"out of range")
                if ov < prev_offset:
                    problems.append(f"group {gid} slot {j}: offsets "
                                    f"decrease")
                prev_offset = ov
            end = int(group[gpn - 1, 1])
            if not 0 <= end <= len(self.ci):
                problems.append(f"group {gid}: END {end} out of range")
            if prev_offset > end:
                problems.append(f"group {gid}: last offset beyond END")
            next_gid = int(group[gpn - 1, 0])
            if next_gid != _NO_OVERFLOW and \
                    not 0 <= next_gid < self.num_groups:
                problems.append(f"group {gid}: bad GID {next_gid}")

        # Chain acyclicity + key reachability (skipping broken GIDs,
        # which were already reported above).
        def walk_chain(start: int) -> Set[int]:
            chain: Set[int] = set()
            cur = start
            while cur != _NO_OVERFLOW and cur not in chain:
                if not 0 <= cur < self.num_groups:
                    break
                chain.add(cur)
                cur = int(self.groups[cur, self.gpn - 1, 0])
            return chain

        for gid in range(self.num_groups):
            visited: Set[int] = set()
            cur = gid
            while cur != _NO_OVERFLOW and 0 <= cur < self.num_groups:
                if cur in visited:
                    problems.append(
                        f"group {gid}: cyclic overflow chain")
                    break
                visited.add(cur)
                cur = int(self.groups[cur, self.gpn - 1, 0])
        for gid in range(self.num_groups):
            for j in range(gpn - 1):
                v = int(self.groups[gid, j, 0])
                if v == _EMPTY_SLOT:
                    break
                home = default_hash(v, self.num_groups)
                if gid not in walk_chain(home):
                    problems.append(
                        f"key {v} stored in group {gid}, unreachable "
                        f"from home group {home}")
        return problems

    def load_factor(self) -> float:
        """Fraction of key slots occupied."""
        total_slots = self.num_groups * (self.gpn - 1)
        return sum(self._keys_per_group) / total_slots if total_slots else 0.0

    def space_words(self) -> int:
        """Words occupied: 2 per slot in the group layer, plus ci."""
        return self.groups.size + len(self.ci)


class PCSRStorage(NeighborStore):
    """All edge-label partitions stored as PCSR (the "+DS" technique)."""

    kind = "pcsr"

    def __init__(self, graph: LabeledGraph, gpn: int = 16) -> None:
        self.gpn = gpn
        self._parts: Dict[int, PCSRPartition] = {}
        for lab, part in partition_by_edge_label(graph).items():
            self._parts[lab] = PCSRPartition(part, gpn=gpn)

    def partition(self, label: int) -> Optional[PCSRPartition]:
        """The PCSR of one edge label, if any edges carry it."""
        return self._parts.get(label)

    def neighbors(self, v: int, label: int) -> Array:
        part = self._parts.get(label)
        if part is None:
            return EMPTY
        return part.neighbors(v)

    def locate_transactions(self, v: int, label: int) -> int:
        """Actual probe reads: 0 when no partition carries ``label`` (no
        structure to read), else the groups walked — a miss inside a
        partition still pays for every group it probed."""
        part = self._parts.get(label)
        if part is None:
            return 0
        return part.probe_transactions(v)

    def read_transactions(self, v: int, label: int) -> int:
        return contiguous_read(len(self.neighbors(v, label)))

    def space_words(self) -> int:
        return sum(p.space_words() for p in self._parts.values())

    def max_chain_length(self) -> int:
        """Longest overflow chain across all partitions."""
        if not self._parts:
            return 0
        return max(p.max_chain_length() for p in self._parts.values())

    def stats(self) -> Dict[str, object]:
        """Aggregated PCSR health across partitions, plus per-label
        detail — the monitoring surface batch/stream reports expose."""
        per_label = {lab: part.stats()
                     for lab, part in sorted(self._parts.items())}
        total_ci = sum(int(s["ci_words"]) for s in per_label.values())
        total_dead = sum(int(s["dead_words"]) for s in per_label.values())
        return {
            "kind": self.kind,
            "partitions": len(per_label),
            "space_words": self.space_words(),
            "total_ci_words": total_ci,
            "total_dead_words": total_dead,
            "dead_ratio": total_dead / total_ci if total_ci else 0.0,
            "max_occupancy": max(
                (float(s["occupancy"]) for s in per_label.values()),
                default=0.0),
            "max_chain_length": self.max_chain_length(),
            "per_label": per_label,
        }
