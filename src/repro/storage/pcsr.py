"""PCSR: the paper's GPU-friendly storage structure (Definition 4, Alg. 1).

For each edge-label partition ``P(G, l)``, the row-offset layer becomes an
array of hash *groups*.  Each group holds up to ``GPN - 1`` key pairs
``(vertex, offset)`` plus one trailing ``(GID, END)`` pair: ``GID`` chains
to the group holding this group's overflow keys (-1 if none) and ``END``
closes the last key's neighbor extent.  With ``GPN = 16`` a group is
exactly 128 bytes, so one warp reads a whole group in a single memory
transaction — which is how PCSR achieves O(1)-transaction ``N(v, l)``.

The number of groups equals the number of vertices in the partition (a
one-to-one hash), and Claim 1 guarantees overflowing groups always find
enough empty groups to chain into.

**Incremental maintenance.**  The hash-group layout is exactly what makes
PCSR dynamic-friendly: a new key goes into the first free slot of its
home-group chain (or a chain extension through an empty group, the same
mechanism Claim 1 relies on), and neighbor lists grow in place because
each group owns a contiguous *region* of ``ci`` with slack at the tail.
:meth:`PCSRPartition.insert_key`, :meth:`PCSRPartition.append_neighbors`
and :meth:`PCSRPartition.remove_neighbor` implement this; every operation
keeps :meth:`PCSRPartition.validate` clean and meters its simulated
memory transactions so incremental-vs-rebuild cost is measurable.  When
the partition outgrows its hash (occupancy) or the empty-group pool runs
dry (Claim 1 can no longer be honored), callers are expected to rebuild —
see :class:`repro.dynamic.index.DynamicPCSRStorage` for the policy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import EdgeLabelPartition, partition_by_edge_label
from repro.gpusim.meter import MemoryMeter
from repro.gpusim.transactions import contiguous_read
from repro.storage.base import EMPTY, NeighborStore

_EMPTY_SLOT = -1
_NO_OVERFLOW = -1

#: multiplicative (Knuth) hash constant for spreading vertex ids
_HASH_MULT = 2654435761


def default_hash(v: int, num_groups: int) -> int:
    """The one-to-one hash mapping vertex ids to group ids."""
    return ((v * _HASH_MULT) & 0xFFFFFFFF) % num_groups


class PCSRPartition:
    """PCSR structure for a single edge-label partition (Definition 4).

    Attributes
    ----------
    groups:
        int64 array of shape ``(num_groups, GPN, 2)``; slot ``[g, j]`` is
        the pair ``(v, ov)`` for ``j < GPN-1`` (``v == -1`` marks unused)
        and ``(GID, END)`` for ``j == GPN-1``.
    ci:
        Column-index layer holding all neighbor lists back to back.
    """

    def __init__(self, partition: EdgeLabelPartition, gpn: int = 16) -> None:
        if not 2 <= gpn <= 16:
            raise StorageError(f"GPN must be in [2, 16], got {gpn}")
        self.gpn = gpn
        self.label = partition.label
        items = partition.items()
        self.num_groups = max(1, len(items))
        self.groups = np.full((self.num_groups, gpn, 2), _EMPTY_SLOT,
                              dtype=np.int64)
        self.groups[:, gpn - 1, 0] = _NO_OVERFLOW

        # --- Algorithm 1, lines 3-4: hash every key to a home group. ---
        keyed: List[List[int]] = [[] for _ in range(self.num_groups)]
        for v, _ in items:
            keyed[default_hash(v, self.num_groups)].append(v)

        capacity = gpn - 1
        # --- Lines 5-8: resolve overflow through empty groups. ---
        placed: List[List[int]] = [ks[:capacity] for ks in keyed]
        overflow: List[Tuple[int, List[int]]] = [
            (gid, ks[capacity:]) for gid, ks in enumerate(keyed)
            if len(ks) > capacity
        ]
        empty_pool = [gid for gid, ks in enumerate(keyed) if not ks]
        chain_next: Dict[int, int] = {}
        for origin, spill in overflow:
            current = origin
            while spill:
                if not empty_pool:
                    raise StorageError(
                        "ran out of empty groups resolving overflow; "
                        "Claim 1 violated (this is a bug)")
                target = empty_pool.pop()
                chain_next[current] = target
                placed[target] = spill[:capacity]
                spill = spill[capacity:]
                current = target

        # --- Lines 9-13: lay out ci and record offsets. ---
        adjacency = {v: nbrs for v, nbrs in items}
        chunks: List[np.ndarray] = []
        pos = 0
        self._region_start = np.zeros(self.num_groups, dtype=np.int64)
        self._region_cap = np.zeros(self.num_groups, dtype=np.int64)
        for gid in range(self.num_groups):
            self._region_start[gid] = pos
            for j, v in enumerate(placed[gid]):
                nbrs = adjacency[v]
                self.groups[gid, j, 0] = v
                self.groups[gid, j, 1] = pos
                chunks.append(nbrs)
                pos += len(nbrs)
            self.groups[gid, gpn - 1, 1] = pos  # END flag
            self.groups[gid, gpn - 1, 0] = chain_next.get(gid, _NO_OVERFLOW)
            self._region_cap[gid] = pos - self._region_start[gid]
        self._ci_buf = (np.concatenate(chunks) if chunks
                        else np.empty(0, dtype=np.int64))
        self._ci_len = int(pos)
        self._keys_per_group = [len(p) for p in placed]
        #: groups with no keys and no chain membership — the reservoir
        #: Claim 1 draws from, both at build time and incrementally.
        self._empty_pool = set(empty_pool)
        #: ci words orphaned by region relocations (space overhead of
        #: in-place maintenance; a rebuild reclaims them).
        self._dead_words = 0

    @property
    def ci(self) -> np.ndarray:
        """Column-index layer (the live prefix of the growable buffer)."""
        return self._ci_buf[:self._ci_len]

    # ------------------------------------------------------------------
    # Lookup (the 4-step procedure under Figure 11c)
    # ------------------------------------------------------------------

    def _probe(self, v: int) -> Tuple[int, int, int]:
        """Walk the group chain for ``v``.

        Returns ``(groups_read, begin, end)`` with ``begin == end == -1``
        if ``v`` is not in this partition.
        """
        gid = default_hash(v, self.num_groups)
        reads = 0
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    begin = int(group[j, 1])
                    if j + 1 < self.gpn - 1 and group[j + 1, 0] != _EMPTY_SLOT:
                        end = int(group[j + 1, 1])
                    else:
                        end = int(group[self.gpn - 1, 1])
                    return reads, begin, end
            gid = int(group[self.gpn - 1, 0])
        return reads, -1, -1

    def neighbors(self, v: int) -> np.ndarray:
        """``N(v, l)`` from the PCSR layout (not the source graph)."""
        _, begin, end = self._probe(v)
        if begin < 0:
            return EMPTY
        return self.ci[begin:end]

    def probe_transactions(self, v: int) -> int:
        """Groups read to locate ``v`` — each is one 128 B transaction
        when ``GPN = 16`` (one warp, one transaction per group).

        Misses cost their actual probe reads: the home group is always
        read, and a miss that walks an overflow chain pays one
        transaction per chained group before concluding ``v`` is absent.
        """
        reads, _, _ = self._probe(v)
        return reads

    # ------------------------------------------------------------------
    # Incremental maintenance (the dynamic-graph update path)
    # ------------------------------------------------------------------

    def _find_key(self, v: int) -> Tuple[int, int, int]:
        """Locate the slot holding ``v``: ``(reads, gid, slot)`` with
        ``gid == -1`` when ``v`` is not stored."""
        gid = default_hash(v, self.num_groups)
        reads = 0
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    return reads, gid, j
            gid = int(group[self.gpn - 1, 0])
        return reads, -1, -1

    def _slot_extent(self, gid: int, j: int) -> Tuple[int, int]:
        """ci extent ``[begin, end)`` of the key at ``(gid, slot j)``."""
        begin = int(self.groups[gid, j, 1])
        if j + 1 < self.gpn - 1 and self.groups[gid, j + 1, 0] != _EMPTY_SLOT:
            end = int(self.groups[gid, j + 1, 1])
        else:
            end = int(self.groups[gid, self.gpn - 1, 1])
        return begin, end

    def _grow_ci(self, extra: int) -> None:
        """Ensure the ci buffer has room for ``extra`` more words."""
        need = self._ci_len + extra
        if need <= len(self._ci_buf):
            return
        new_cap = max(need, 2 * len(self._ci_buf), 16)
        buf = np.full(new_cap, _EMPTY_SLOT, dtype=np.int64)
        buf[:self._ci_len] = self._ci_buf[:self._ci_len]
        self._ci_buf = buf

    def _relocate_group(self, gid: int, extra: int,
                        meter: Optional[MemoryMeter]) -> None:
        """Move ``gid``'s ci region to the tail of ci with ``extra``
        words of fresh slack, orphaning the old region."""
        start = int(self._region_start[gid])
        end = int(self.groups[gid, self.gpn - 1, 1])
        used = end - start
        new_cap = used + max(extra, used, 4)
        self._grow_ci(new_cap)
        new_start = self._ci_len
        if used:
            self._ci_buf[new_start:new_start + used] = \
                self._ci_buf[start:end]
        delta = new_start - start
        for j in range(self.gpn - 1):
            if self.groups[gid, j, 0] == _EMPTY_SLOT:
                break
            self.groups[gid, j, 1] += delta
        self.groups[gid, self.gpn - 1, 1] = new_start + used
        self._dead_words += int(self._region_cap[gid])
        self._region_start[gid] = new_start
        self._region_cap[gid] = new_cap
        self._ci_len = new_start + new_cap
        if meter is not None:
            moved = contiguous_read(used)
            meter.add_gld(moved, label="pcsr_maintain")
            meter.add_gst(moved + 1)  # stream the region + group rewrite

    def _region_slack(self, gid: int) -> int:
        end = int(self.groups[gid, self.gpn - 1, 1])
        return int(self._region_start[gid] + self._region_cap[gid] - end)

    def insert_key(self, v: int, neighbors: np.ndarray,
                   meter: Optional[MemoryMeter] = None) -> bool:
        """Place a *new* key ``v`` with its sorted neighbor list.

        Walks the home-group chain for a free key slot; when the whole
        chain is full, extends it through an empty group exactly as
        Algorithm 1 does (Claim 1's mechanism).  Returns ``False`` when
        no empty group remains — the caller must rebuild the partition
        (the hash is no longer one-to-one enough to honor Claim 1).
        """
        nbrs = np.sort(np.asarray(neighbors, dtype=np.int64))
        gid = default_hash(v, self.num_groups)
        reads = 0
        target = -1
        last = gid
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    raise StorageError(
                        f"key {v} already present; use append_neighbors")
            if target < 0 and self._keys_per_group[gid] < self.gpn - 1:
                target = gid
            last = gid
            gid = int(group[self.gpn - 1, 0])
        if meter is not None:
            meter.add_gld(reads, label="pcsr_maintain")
        if target < 0:
            # Chain full end to end: extend it through an empty group.
            if not self._empty_pool:
                return False
            target = self._empty_pool.pop()
            self.groups[last, self.gpn - 1, 0] = target
            # Fresh region at the ci tail for the new chain link.
            self._grow_ci(0)
            self._region_start[target] = self._ci_len
            self._region_cap[target] = 0
            self.groups[target, self.gpn - 1, 1] = self._ci_len
            if meter is not None:
                meter.add_gst(1)  # rewrite the chained-from group

        if self._region_slack(target) < len(nbrs):
            self._relocate_group(target, len(nbrs), meter)
        end = int(self.groups[target, self.gpn - 1, 1])
        slot = self._keys_per_group[target]
        if len(nbrs):
            self._ci_buf[end:end + len(nbrs)] = nbrs
        self.groups[target, slot, 0] = v
        self.groups[target, slot, 1] = end
        self.groups[target, self.gpn - 1, 1] = end + len(nbrs)
        self._keys_per_group[target] += 1
        # A group with a key is no longer a Claim-1 reservoir candidate.
        self._empty_pool.discard(target)
        if meter is not None:
            meter.add_gst(1 + contiguous_read(len(nbrs)))
        return True

    def append_neighbors(self, v: int, new_neighbors: np.ndarray,
                         meter: Optional[MemoryMeter] = None) -> None:
        """Merge ``new_neighbors`` into existing key ``v``'s list.

        Later slots in the group shift right inside the region (slack
        permitting); otherwise the whole region relocates to the ci
        tail.  The list stays sorted, so lookups still binary-search.
        """
        reads, gid, j = self._find_key(v)
        if meter is not None:
            meter.add_gld(reads, label="pcsr_maintain")
        if gid < 0:
            raise StorageError(f"key {v} not present; use insert_key")
        begin, end = self._slot_extent(gid, j)
        current = self._ci_buf[begin:end]
        merged = np.union1d(current, np.asarray(new_neighbors,
                                                dtype=np.int64))
        delta = len(merged) - (end - begin)
        if delta and self._region_slack(gid) < delta:
            self._relocate_group(gid, max(delta, len(merged)), meter)
            begin, end = self._slot_extent(gid, j)
        group_end = int(self.groups[gid, self.gpn - 1, 1])
        if delta:
            # Shift the later slots' lists right by delta.
            tail = self._ci_buf[end:group_end].copy()
            self._ci_buf[end + delta:group_end + delta] = tail
            for k in range(j + 1, self.gpn - 1):
                if self.groups[gid, k, 0] == _EMPTY_SLOT:
                    break
                self.groups[gid, k, 1] += delta
            self.groups[gid, self.gpn - 1, 1] = group_end + delta
        self._ci_buf[begin:begin + len(merged)] = merged
        if meter is not None:
            meter.add_gld(contiguous_read(end - begin),
                          label="pcsr_maintain")
            meter.add_gst(1 + contiguous_read(len(merged))
                          + contiguous_read(max(0, group_end - end)))

    def remove_neighbor(self, v: int, w: int,
                        meter: Optional[MemoryMeter] = None) -> None:
        """Delete ``w`` from ``v``'s neighbor list in place.

        Later lists in the group shift left one word; the freed word
        becomes region slack.  A key whose list empties keeps its slot
        with a zero-length extent (keys are never evicted in place — a
        rebuild compacts them away).
        """
        reads, gid, j = self._find_key(v)
        if meter is not None:
            meter.add_gld(reads, label="pcsr_maintain")
        if gid < 0:
            raise StorageError(f"key {v} not present in partition")
        begin, end = self._slot_extent(gid, j)
        seg = self._ci_buf[begin:end]
        pos = int(np.searchsorted(seg, w))
        if pos >= len(seg) or seg[pos] != w:
            raise StorageError(f"{w} is not a neighbor of {v}")
        group_end = int(self.groups[gid, self.gpn - 1, 1])
        self._ci_buf[begin + pos:group_end - 1] = \
            self._ci_buf[begin + pos + 1:group_end].copy()
        for k in range(j + 1, self.gpn - 1):
            if self.groups[gid, k, 0] == _EMPTY_SLOT:
                break
            self.groups[gid, k, 1] -= 1
        self.groups[gid, self.gpn - 1, 1] = group_end - 1
        if meter is not None:
            meter.add_gld(contiguous_read(group_end - begin),
                          label="pcsr_maintain")
            meter.add_gst(1 + contiguous_read(group_end - 1 - begin - pos))

    def items(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate ``(key, neighbor array)`` straight off the structure
        (rebuilds and tests read the partition back through this)."""
        for gid in range(self.num_groups):
            for j in range(self.gpn - 1):
                v = int(self.groups[gid, j, 0])
                if v == _EMPTY_SLOT:
                    break
                begin, end = self._slot_extent(gid, j)
                yield v, self._ci_buf[begin:end].copy()

    def key_count(self) -> int:
        """Number of stored keys (vertices with a slot)."""
        return int(sum(self._keys_per_group))

    def occupancy(self) -> float:
        """Keys per group — 1.0 is the one-to-one design point of
        Algorithm 1; incremental inserts push it above that, and the
        rebuild policy caps how far."""
        return self.key_count() / self.num_groups

    def dead_words(self) -> int:
        """ci words orphaned by region relocations since the last build."""
        return self._dead_words

    def dead_ratio(self) -> float:
        """Fraction of the ci layer that is orphaned dead space."""
        return self._dead_words / self._ci_len if self._ci_len else 0.0

    def compact(self, meter: Optional[MemoryMeter] = None) -> int:
        """Slide every live ci region left over the dead space.

        Regions are processed in layout order, so each destination is at
        or before its source and the move is safe in place; per-region
        slack is dropped (the next append re-creates it by relocation).
        Afterwards ``dead_words() == 0`` and the ci layer is exactly the
        live neighbor lists.  Metered like every other maintenance op
        (label ``pcsr_compact``).  Returns the number of words
        reclaimed.
        """
        old_len = self._ci_len
        order = np.argsort(self._region_start, kind="stable")
        pos = 0
        moved = 0
        groups_rewritten = 0
        for gid in order:
            gid = int(gid)
            start = int(self._region_start[gid])
            end = int(self.groups[gid, self.gpn - 1, 1])
            used = end - start
            if pos != start:
                if used:
                    self._ci_buf[pos:pos + used] = \
                        self._ci_buf[start:end].copy()
                    moved += used
                delta = pos - start
                for j in range(self.gpn - 1):
                    if self.groups[gid, j, 0] == _EMPTY_SLOT:
                        break
                    self.groups[gid, j, 1] += delta
                self.groups[gid, self.gpn - 1, 1] = pos + used
                groups_rewritten += 1
            self._region_start[gid] = pos
            self._region_cap[gid] = used
            pos += used
        self._ci_len = pos
        self._dead_words = 0
        if meter is not None:
            meter.add_gld(contiguous_read(moved), label="pcsr_compact")
            meter.add_gst(contiguous_read(moved) + groups_rewritten)
        return old_len - pos

    def stats(self) -> Dict[str, float]:
        """Health counters for this partition (monitoring surface)."""
        return {
            "label": self.label,
            "num_groups": self.num_groups,
            "keys": self.key_count(),
            "occupancy": self.occupancy(),
            "load_factor": self.load_factor(),
            "ci_words": self._ci_len,
            "dead_words": self._dead_words,
            "dead_ratio": self.dead_ratio(),
            "max_chain_length": self.max_chain_length(),
        }

    def max_chain_length(self) -> int:
        """Longest overflow chain (paper: expected <= 1 + 5log|V|/loglog|V|)."""
        longest = 1
        for gid in range(self.num_groups):
            length = 1
            cur = int(self.groups[gid, self.gpn - 1, 0])
            while cur != _NO_OVERFLOW:
                length += 1
                cur = int(self.groups[cur, self.gpn - 1, 0])
            longest = max(longest, length)
        return longest

    def validate(self) -> List[str]:
        """Structural invariant check; returns human-readable violations.

        Invariants of Definition 4: key slots fill contiguously from
        slot 0; offsets are non-decreasing in layout order and bounded
        by ``len(ci)``; every GID points at a real group (or -1); chains
        are acyclic; every key hashes (transitively) to the group chain
        that holds it.
        """
        problems: List[str] = []
        gpn = self.gpn
        for gid in range(self.num_groups):
            group = self.groups[gid]
            seen_empty = False
            prev_offset = -1
            for j in range(gpn - 1):
                v, ov = int(group[j, 0]), int(group[j, 1])
                if v == _EMPTY_SLOT:
                    seen_empty = True
                    continue
                if seen_empty:
                    problems.append(f"group {gid}: key after empty slot")
                if not 0 <= ov <= len(self.ci):
                    problems.append(f"group {gid} slot {j}: offset {ov} "
                                    f"out of range")
                if ov < prev_offset:
                    problems.append(f"group {gid} slot {j}: offsets "
                                    f"decrease")
                prev_offset = ov
            end = int(group[gpn - 1, 1])
            if not 0 <= end <= len(self.ci):
                problems.append(f"group {gid}: END {end} out of range")
            if prev_offset > end:
                problems.append(f"group {gid}: last offset beyond END")
            next_gid = int(group[gpn - 1, 0])
            if next_gid != _NO_OVERFLOW and \
                    not 0 <= next_gid < self.num_groups:
                problems.append(f"group {gid}: bad GID {next_gid}")

        # Chain acyclicity + key reachability (skipping broken GIDs,
        # which were already reported above).
        def walk_chain(start: int) -> set:
            chain: set = set()
            cur = start
            while cur != _NO_OVERFLOW and cur not in chain:
                if not 0 <= cur < self.num_groups:
                    break
                chain.add(cur)
                cur = int(self.groups[cur, self.gpn - 1, 0])
            return chain

        for gid in range(self.num_groups):
            visited: set = set()
            cur = gid
            while cur != _NO_OVERFLOW and 0 <= cur < self.num_groups:
                if cur in visited:
                    problems.append(
                        f"group {gid}: cyclic overflow chain")
                    break
                visited.add(cur)
                cur = int(self.groups[cur, self.gpn - 1, 0])
        for gid in range(self.num_groups):
            for j in range(gpn - 1):
                v = int(self.groups[gid, j, 0])
                if v == _EMPTY_SLOT:
                    break
                home = default_hash(v, self.num_groups)
                if gid not in walk_chain(home):
                    problems.append(
                        f"key {v} stored in group {gid}, unreachable "
                        f"from home group {home}")
        return problems

    def load_factor(self) -> float:
        """Fraction of key slots occupied."""
        total_slots = self.num_groups * (self.gpn - 1)
        return sum(self._keys_per_group) / total_slots if total_slots else 0.0

    def space_words(self) -> int:
        """Words occupied: 2 per slot in the group layer, plus ci."""
        return self.groups.size + len(self.ci)


class PCSRStorage(NeighborStore):
    """All edge-label partitions stored as PCSR (the "+DS" technique)."""

    kind = "pcsr"

    def __init__(self, graph: LabeledGraph, gpn: int = 16) -> None:
        self.gpn = gpn
        self._parts: Dict[int, PCSRPartition] = {}
        for lab, part in partition_by_edge_label(graph).items():
            self._parts[lab] = PCSRPartition(part, gpn=gpn)

    def partition(self, label: int) -> Optional[PCSRPartition]:
        """The PCSR of one edge label, if any edges carry it."""
        return self._parts.get(label)

    def neighbors(self, v: int, label: int) -> np.ndarray:
        part = self._parts.get(label)
        if part is None:
            return EMPTY
        return part.neighbors(v)

    def locate_transactions(self, v: int, label: int) -> int:
        """Actual probe reads: 0 when no partition carries ``label`` (no
        structure to read), else the groups walked — a miss inside a
        partition still pays for every group it probed."""
        part = self._parts.get(label)
        if part is None:
            return 0
        return part.probe_transactions(v)

    def read_transactions(self, v: int, label: int) -> int:
        return contiguous_read(len(self.neighbors(v, label)))

    def space_words(self) -> int:
        return sum(p.space_words() for p in self._parts.values())

    def max_chain_length(self) -> int:
        """Longest overflow chain across all partitions."""
        if not self._parts:
            return 0
        return max(p.max_chain_length() for p in self._parts.values())

    def stats(self) -> Dict[str, object]:
        """Aggregated PCSR health across partitions, plus per-label
        detail — the monitoring surface batch/stream reports expose."""
        per_label = {lab: part.stats()
                     for lab, part in sorted(self._parts.items())}
        total_ci = sum(int(s["ci_words"]) for s in per_label.values())
        total_dead = sum(int(s["dead_words"]) for s in per_label.values())
        return {
            "kind": self.kind,
            "partitions": len(per_label),
            "space_words": self.space_words(),
            "total_ci_words": total_ci,
            "total_dead_words": total_dead,
            "dead_ratio": total_dead / total_ci if total_ci else 0.0,
            "max_occupancy": max(
                (float(s["occupancy"]) for s in per_label.values()),
                default=0.0),
            "max_chain_length": self.max_chain_length(),
            "per_label": per_label,
        }
