"""PCSR: the paper's GPU-friendly storage structure (Definition 4, Alg. 1).

For each edge-label partition ``P(G, l)``, the row-offset layer becomes an
array of hash *groups*.  Each group holds up to ``GPN - 1`` key pairs
``(vertex, offset)`` plus one trailing ``(GID, END)`` pair: ``GID`` chains
to the group holding this group's overflow keys (-1 if none) and ``END``
closes the last key's neighbor extent.  With ``GPN = 16`` a group is
exactly 128 bytes, so one warp reads a whole group in a single memory
transaction — which is how PCSR achieves O(1)-transaction ``N(v, l)``.

The number of groups equals the number of vertices in the partition (a
one-to-one hash), and Claim 1 guarantees overflowing groups always find
enough empty groups to chain into.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StorageError
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import EdgeLabelPartition, partition_by_edge_label
from repro.gpusim.transactions import contiguous_read
from repro.storage.base import EMPTY, NeighborStore

_EMPTY_SLOT = -1
_NO_OVERFLOW = -1

#: multiplicative (Knuth) hash constant for spreading vertex ids
_HASH_MULT = 2654435761


def default_hash(v: int, num_groups: int) -> int:
    """The one-to-one hash mapping vertex ids to group ids."""
    return ((v * _HASH_MULT) & 0xFFFFFFFF) % num_groups


class PCSRPartition:
    """PCSR structure for a single edge-label partition (Definition 4).

    Attributes
    ----------
    groups:
        int64 array of shape ``(num_groups, GPN, 2)``; slot ``[g, j]`` is
        the pair ``(v, ov)`` for ``j < GPN-1`` (``v == -1`` marks unused)
        and ``(GID, END)`` for ``j == GPN-1``.
    ci:
        Column-index layer holding all neighbor lists back to back.
    """

    def __init__(self, partition: EdgeLabelPartition, gpn: int = 16) -> None:
        if not 2 <= gpn <= 16:
            raise StorageError(f"GPN must be in [2, 16], got {gpn}")
        self.gpn = gpn
        self.label = partition.label
        items = partition.items()
        self.num_groups = max(1, len(items))
        self.groups = np.full((self.num_groups, gpn, 2), _EMPTY_SLOT,
                              dtype=np.int64)
        self.groups[:, gpn - 1, 0] = _NO_OVERFLOW

        # --- Algorithm 1, lines 3-4: hash every key to a home group. ---
        keyed: List[List[int]] = [[] for _ in range(self.num_groups)]
        for v, _ in items:
            keyed[default_hash(v, self.num_groups)].append(v)

        capacity = gpn - 1
        # --- Lines 5-8: resolve overflow through empty groups. ---
        placed: List[List[int]] = [ks[:capacity] for ks in keyed]
        overflow: List[Tuple[int, List[int]]] = [
            (gid, ks[capacity:]) for gid, ks in enumerate(keyed)
            if len(ks) > capacity
        ]
        empty_pool = [gid for gid, ks in enumerate(keyed) if not ks]
        chain_next: Dict[int, int] = {}
        for origin, spill in overflow:
            current = origin
            while spill:
                if not empty_pool:
                    raise StorageError(
                        "ran out of empty groups resolving overflow; "
                        "Claim 1 violated (this is a bug)")
                target = empty_pool.pop()
                chain_next[current] = target
                placed[target] = spill[:capacity]
                spill = spill[capacity:]
                current = target

        # --- Lines 9-13: lay out ci and record offsets. ---
        adjacency = {v: nbrs for v, nbrs in items}
        chunks: List[np.ndarray] = []
        pos = 0
        for gid in range(self.num_groups):
            for j, v in enumerate(placed[gid]):
                nbrs = adjacency[v]
                self.groups[gid, j, 0] = v
                self.groups[gid, j, 1] = pos
                chunks.append(nbrs)
                pos += len(nbrs)
            self.groups[gid, gpn - 1, 1] = pos  # END flag
            self.groups[gid, gpn - 1, 0] = chain_next.get(gid, _NO_OVERFLOW)
        self.ci = (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=np.int64))
        self._keys_per_group = [len(p) for p in placed]

    # ------------------------------------------------------------------
    # Lookup (the 4-step procedure under Figure 11c)
    # ------------------------------------------------------------------

    def _probe(self, v: int) -> Tuple[int, int, int]:
        """Walk the group chain for ``v``.

        Returns ``(groups_read, begin, end)`` with ``begin == end == -1``
        if ``v`` is not in this partition.
        """
        gid = default_hash(v, self.num_groups)
        reads = 0
        while gid != _NO_OVERFLOW:
            reads += 1
            group = self.groups[gid]
            for j in range(self.gpn - 1):
                if group[j, 0] == v:
                    begin = int(group[j, 1])
                    if j + 1 < self.gpn - 1 and group[j + 1, 0] != _EMPTY_SLOT:
                        end = int(group[j + 1, 1])
                    else:
                        end = int(group[self.gpn - 1, 1])
                    return reads, begin, end
            gid = int(group[self.gpn - 1, 0])
        return reads, -1, -1

    def neighbors(self, v: int) -> np.ndarray:
        """``N(v, l)`` from the PCSR layout (not the source graph)."""
        _, begin, end = self._probe(v)
        if begin < 0:
            return EMPTY
        return self.ci[begin:end]

    def probe_transactions(self, v: int) -> int:
        """Groups read to locate ``v`` — each is one 128 B transaction
        when ``GPN = 16`` (one warp, one transaction per group)."""
        reads, _, _ = self._probe(v)
        return max(1, reads)

    def max_chain_length(self) -> int:
        """Longest overflow chain (paper: expected <= 1 + 5log|V|/loglog|V|)."""
        longest = 1
        for gid in range(self.num_groups):
            length = 1
            cur = int(self.groups[gid, self.gpn - 1, 0])
            while cur != _NO_OVERFLOW:
                length += 1
                cur = int(self.groups[cur, self.gpn - 1, 0])
            longest = max(longest, length)
        return longest

    def validate(self) -> List[str]:
        """Structural invariant check; returns human-readable violations.

        Invariants of Definition 4: key slots fill contiguously from
        slot 0; offsets are non-decreasing in layout order and bounded
        by ``len(ci)``; every GID points at a real group (or -1); chains
        are acyclic; every key hashes (transitively) to the group chain
        that holds it.
        """
        problems: List[str] = []
        gpn = self.gpn
        for gid in range(self.num_groups):
            group = self.groups[gid]
            seen_empty = False
            prev_offset = -1
            for j in range(gpn - 1):
                v, ov = int(group[j, 0]), int(group[j, 1])
                if v == _EMPTY_SLOT:
                    seen_empty = True
                    continue
                if seen_empty:
                    problems.append(f"group {gid}: key after empty slot")
                if not 0 <= ov <= len(self.ci):
                    problems.append(f"group {gid} slot {j}: offset {ov} "
                                    f"out of range")
                if ov < prev_offset:
                    problems.append(f"group {gid} slot {j}: offsets "
                                    f"decrease")
                prev_offset = ov
            end = int(group[gpn - 1, 1])
            if not 0 <= end <= len(self.ci):
                problems.append(f"group {gid}: END {end} out of range")
            if prev_offset > end:
                problems.append(f"group {gid}: last offset beyond END")
            next_gid = int(group[gpn - 1, 0])
            if next_gid != _NO_OVERFLOW and \
                    not 0 <= next_gid < self.num_groups:
                problems.append(f"group {gid}: bad GID {next_gid}")

        # Chain acyclicity + key reachability (skipping broken GIDs,
        # which were already reported above).
        def walk_chain(start: int) -> set:
            chain: set = set()
            cur = start
            while cur != _NO_OVERFLOW and cur not in chain:
                if not 0 <= cur < self.num_groups:
                    break
                chain.add(cur)
                cur = int(self.groups[cur, self.gpn - 1, 0])
            return chain

        for gid in range(self.num_groups):
            visited: set = set()
            cur = gid
            while cur != _NO_OVERFLOW and 0 <= cur < self.num_groups:
                if cur in visited:
                    problems.append(
                        f"group {gid}: cyclic overflow chain")
                    break
                visited.add(cur)
                cur = int(self.groups[cur, self.gpn - 1, 0])
        for gid in range(self.num_groups):
            for j in range(gpn - 1):
                v = int(self.groups[gid, j, 0])
                if v == _EMPTY_SLOT:
                    break
                home = default_hash(v, self.num_groups)
                if gid not in walk_chain(home):
                    problems.append(
                        f"key {v} stored in group {gid}, unreachable "
                        f"from home group {home}")
        return problems

    def load_factor(self) -> float:
        """Fraction of key slots occupied."""
        total_slots = self.num_groups * (self.gpn - 1)
        return sum(self._keys_per_group) / total_slots if total_slots else 0.0

    def space_words(self) -> int:
        """Words occupied: 2 per slot in the group layer, plus ci."""
        return self.groups.size + len(self.ci)


class PCSRStorage(NeighborStore):
    """All edge-label partitions stored as PCSR (the "+DS" technique)."""

    kind = "pcsr"

    def __init__(self, graph: LabeledGraph, gpn: int = 16) -> None:
        self.gpn = gpn
        self._parts: Dict[int, PCSRPartition] = {}
        for lab, part in partition_by_edge_label(graph).items():
            self._parts[lab] = PCSRPartition(part, gpn=gpn)

    def partition(self, label: int) -> Optional[PCSRPartition]:
        """The PCSR of one edge label, if any edges carry it."""
        return self._parts.get(label)

    def neighbors(self, v: int, label: int) -> np.ndarray:
        part = self._parts.get(label)
        if part is None:
            return EMPTY
        return part.neighbors(v)

    def locate_transactions(self, v: int, label: int) -> int:
        part = self._parts.get(label)
        if part is None:
            return 0
        return part.probe_transactions(v)

    def read_transactions(self, v: int, label: int) -> int:
        return contiguous_read(len(self.neighbors(v, label)))

    def space_words(self) -> int:
        return sum(p.space_words() for p in self._parts.values())

    def max_chain_length(self) -> int:
        """Longest overflow chain across all partitions."""
        if not self._parts:
            return 0
        return max(p.max_chain_length() for p in self._parts.values())
