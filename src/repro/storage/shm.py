"""Zero-copy shared-memory data plane for process executors.

The process executor's historical defect: every batch re-pickled the
data-graph-sized payload — CSR arrays, signature-table rows, PCSR ci
words — to each worker chunk (`_DeltaContext` for streams, the per-shard
``EngineBuildSpec`` tuple for shards), so on large graphs the *shipping*
was the cost even though workers cached built engines.  This module
moves the big arrays into named :mod:`multiprocessing.shared_memory`
segments owned by the parent; what crosses the pipe is a compact
picklable *handle* — segment names + dtypes + shapes + an epoch — and
workers attach read-only by name, memoizing the attach per publication.
Steady-state batches therefore ship O(handle) bytes instead of O(|G|).

Layers
------

* **Blocks** — :class:`BlockHandle` names one shared segment holding one
  contiguous ndarray.  The parent owns every block it creates in a
  refcounted registry; :class:`BlockLease` objects hold references and
  unlink segments when the last reference drops (with an ``atexit``
  backstop, so a crashed run never leaks ``/dev/shm`` entries).
* **Publications** — :class:`ArrayPublication` is one logical array
  split into vertex-range chunks (:data:`DEFAULT_CHUNK` rows each).
  Chunking is what makes *patch* publications O(changes): a new
  snapshot re-publishes only the chunks containing touched vertices and
  re-leases the untouched chunks by name (refcount bump, no copy).
* **Handles** — :class:`GraphHandle` (CSR arrays, shipped as
  shift-invariant *degrees*; attach rebuilds offsets by prefix sum),
  :class:`SignatureHandle` (table rows + layout flag),
  :class:`PCSRStoreHandle` (per-partition group arrays + live ci
  prefix), and the two composites the executors ship:
  :class:`EngineArtifactsHandle` (batch/shard path) and
  :class:`GraphSnapshotHandle` (stream path).

Attach semantics
----------------

Workers attach with :func:`attach_graph` / :func:`attach_snapshot` /
:func:`attach_engine`.  Single-chunk publications attach as true
zero-copy read-only views over the segment; multi-chunk publications
concatenate into worker-private memory once and are memoized (LRU per
handle), so repeated batches over the same publication attach nothing.
Attached objects keep their ``SharedMemory`` mappings alive via a
``_shm_refs`` attribute; on Linux an owner-side unlink leaves existing
mappings valid, so a worker mid-batch is never yanked — only *new*
attaches of a retired publication fail, raising :class:`StaleHandleError`
(chained from the underlying ``FileNotFoundError``) instead of silently
reading stale arrays.

Attach-side processes must not let the ``resource_tracker`` adopt
segments they merely attached (a worker killed by ``os._exit`` would
otherwise trip spurious leak warnings and unlinks at tracker shutdown);
:func:`_attach_untracked` uses ``track=False`` where available
(Python >= 3.13) and unregisters after attach elsewhere.

Reconstruction contracts
------------------------

Attached objects are rebuilt without ever shipping Python containers:

* ``LabeledGraph`` — offsets are the prefix sum of the shipped degrees
  (offsets themselves shift under patches; degrees of untouched rows do
  not), and ``_edge_map`` / ``_edge_label_freq`` are re-derived
  vectorized from the CSR arrays.  Insertion order of the rebuilt edge
  map differs from the parent's, which is immaterial worker-side: joins
  read arrays, and ``has_edge`` / ``edge_label`` are order-insensitive.
* ``PCSRPartition`` — ships ``groups``, the live ci prefix and the
  region arrays; ``_keys_per_group`` is derived from the group layer
  (key slots fill contiguously from slot 0 — a ``validate()``
  invariant) and ``_empty_pool`` is exactly the zero-key groups (chain
  extension targets receive a key immediately and keys are never
  evicted).  Worker-side stores are read-only: probes and neighbor
  reads never mutate.

Differential testing asserts process-executor results byte-identical to
the in-process serial arm across the batch, stream, and sharded paths.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.arraytypes import Array
from repro.core.signature_table import SignatureTable
from repro.errors import StorageError
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.storage.pcsr import _EMPTY_SLOT, PCSRPartition, PCSRStorage

if TYPE_CHECKING:  # runtime import stays inside attach_engine (the
    # core package imports storage; a top-level import would cycle)
    from repro.core.config import GSIConfig
    from repro.core.engine import GSIEngine

#: rows per publication chunk; the patch-sharing granularity
DEFAULT_CHUNK = 4096


class StaleHandleError(RuntimeError):
    """A handle names a shared segment its owner already unlinked.

    Raised on attach of a retired publication — e.g. a worker holding a
    stale-epoch :class:`EngineArtifactsHandle` after the owning engine
    rebuilt.  The fix is always to re-publish and re-ship the handle;
    silently serving the old arrays is never an option because the
    mapping is gone.
    """


# ----------------------------------------------------------------------
# Owner-side block registry (refcounted; unlink at zero; atexit backstop)
# ----------------------------------------------------------------------

_LOCK = threading.Lock()
_OWNED: Dict[str, shared_memory.SharedMemory] = {}
_REFS: Dict[str, int] = {}


@dataclass(frozen=True)
class BlockHandle:
    """One shared segment holding one contiguous ndarray."""

    name: str
    dtype: str
    shape: Tuple[int, ...]


def _create_block(arr: Array) -> BlockHandle:
    """Copy ``arr`` into a fresh named segment owned by this process."""
    arr = np.ascontiguousarray(arr)
    name = f"gsi{os.getpid():x}_{uuid.uuid4().hex[:12]}"
    seg = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(1, arr.nbytes))
    if arr.nbytes:
        Array(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
    with _LOCK:
        _OWNED[name] = seg
        _REFS[name] = 1
    registry = get_registry()
    registry.counter(
        "gsi_shm_segments_total",
        "Shared-memory segments published.").inc(1.0, plane="shm")
    registry.counter(
        "gsi_shm_published_bytes_total",
        "Bytes copied into fresh shared-memory segments.").inc(
            float(arr.nbytes), plane="shm")
    return BlockHandle(name=name, dtype=str(arr.dtype),
                       shape=tuple(int(s) for s in arr.shape))


def _retain(names: Iterable[str]) -> None:
    with _LOCK:
        for name in names:
            if name not in _REFS:
                raise StorageError(
                    f"cannot retain unowned shared block {name!r}")
            _REFS[name] += 1


def _release(names: Iterable[str]) -> None:
    dead: List[shared_memory.SharedMemory] = []
    with _LOCK:
        for name in names:
            refs = _REFS.get(name)
            if refs is None:
                continue  # already force-released (atexit raced)
            if refs > 1:
                _REFS[name] = refs - 1
            else:
                del _REFS[name]
                dead.append(_OWNED.pop(name))
    for seg in dead:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
        seg.close()


def owned_segment_names() -> Tuple[str, ...]:
    """Names of every live segment this process owns (leak checks)."""
    with _LOCK:
        return tuple(sorted(_OWNED))


@atexit.register
def _cleanup_owned_segments() -> None:  # pragma: no cover - process exit
    """Backstop: unlink whatever leases were never released."""
    with _LOCK:
        dead = list(_OWNED.values())
        _OWNED.clear()
        _REFS.clear()
    for seg in dead:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        seg.close()


class BlockLease:
    """Owner-side reference on a set of shared blocks.

    Publications hand one of these back; :meth:`release` (idempotent)
    drops the references, unlinking any block whose refcount reaches
    zero.  Blocks shared between a patched publication and its
    predecessor carry one reference per lease, so releasing the old
    snapshot's lease never unlinks chunks the new snapshot still uses.
    """

    def __init__(self, names: Sequence[str]) -> None:
        self._names = tuple(names)
        self._released = False

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        _release(self._names)

    def __enter__(self) -> "BlockLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


# ----------------------------------------------------------------------
# Attach-side primitives
# ----------------------------------------------------------------------


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach by name without adopting the segment into the resource
    tracker.  Only the *owner* may be tracked: a tracked attach would
    warn (and unlink early) when a worker exits, and — because forked
    workers and in-process attaches share the owner's tracker — an
    attach-then-``unregister`` would strip the owner's own registration
    instead.  On Python >= 3.13 ``track=False`` says this directly; on
    older versions registration is suppressed for the duration of the
    attach (the GIL makes the swap safe for our single-threaded attach
    paths, and any concurrent attach wants the suppression too)."""
    try:
        return shared_memory.SharedMemory(name=name, create=False,
                                          track=False)
    except TypeError:  # Python < 3.13 has no track kwarg
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def _attach_block(block: BlockHandle
                  ) -> Tuple[Array, shared_memory.SharedMemory]:
    try:
        seg = _attach_untracked(block.name)
    except FileNotFoundError as exc:
        raise StaleHandleError(
            f"shared block {block.name!r} is gone — its publication was "
            f"retired (owner shut down, rebuilt, or committed a new "
            f"epoch); re-publish and ship a fresh handle") from exc
    arr = Array(block.shape, dtype=np.dtype(block.dtype),
                     buffer=seg.buf)
    arr.flags.writeable = False
    return arr, seg


@dataclass(frozen=True)
class ArrayPublication:
    """One logical array as an ordered tuple of chunk blocks."""

    blocks: Tuple[BlockHandle, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(b.name for b in self.blocks)


def _attach_publication(pub: ArrayPublication
                        ) -> Tuple[Array,
                                   List[shared_memory.SharedMemory]]:
    """Attach a publication: a zero-copy view for single-chunk, one
    worker-private concatenation for multi-chunk."""
    pairs = [_attach_block(block) for block in pub.blocks]
    segs = [seg for _, seg in pairs]
    if len(pairs) == 1:
        return pairs[0][0], segs
    arr = np.concatenate([a for a, _ in pairs])
    arr.flags.writeable = False
    return arr, segs


# ----------------------------------------------------------------------
# Publications: graphs, signature tables, PCSR stores
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GraphHandle:
    """A :class:`LabeledGraph` as shared CSR blocks.

    Degrees ship instead of offsets: offsets shift cumulatively under
    patches while untouched rows' degrees (and row contents) do not, so
    degree chunks are reusable across snapshots.  ``nbr`` / ``elab``
    chunks are row-aligned to the same vertex ranges.
    """

    num_vertices: int
    chunk: int
    vlabels: ArrayPublication
    degrees: ArrayPublication
    nbr: ArrayPublication
    elab: ArrayPublication

    @property
    def names(self) -> Tuple[str, ...]:
        return (self.vlabels.names + self.degrees.names
                + self.nbr.names + self.elab.names)


@dataclass(frozen=True)
class SignatureHandle:
    """A :class:`SignatureTable` as row-chunked shared blocks."""

    table: ArrayPublication
    column_first: bool

    @property
    def names(self) -> Tuple[str, ...]:
        return self.table.names


@dataclass(frozen=True)
class PCSRPartitionHandle:
    """One :class:`PCSRPartition` as shared blocks plus derivable ints."""

    label: int
    gpn: int
    num_groups: int
    ci_len: int
    dead_words: int
    groups: ArrayPublication
    ci: ArrayPublication
    region_start: ArrayPublication
    region_cap: ArrayPublication

    @property
    def names(self) -> Tuple[str, ...]:
        return (self.groups.names + self.ci.names
                + self.region_start.names + self.region_cap.names)


@dataclass(frozen=True)
class PCSRStoreHandle:
    """A :class:`PCSRStorage` as per-partition handles."""

    gpn: int
    parts: Tuple[PCSRPartitionHandle, ...]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(n for p in self.parts for n in p.names)


@dataclass(frozen=True)
class EngineArtifactsHandle:
    """Everything a worker needs to serve a :class:`GSIEngine` without
    receiving the payload: graph + signature table (+ PCSR store when
    the parent serves PCSR; other store kinds rebuild deterministically
    from the attached graph)."""

    epoch: int
    graph: GraphHandle
    signature: SignatureHandle
    store: Optional[PCSRStoreHandle]

    @property
    def names(self) -> Tuple[str, ...]:
        names = self.graph.names + self.signature.names
        if self.store is not None:
            names = names + self.store.names
        return names


@dataclass(frozen=True)
class GraphSnapshotHandle:
    """The stream's per-batch context payload: committed snapshot +
    maintained signature rows, as shared blocks keyed by commit epoch."""

    epoch: int
    graph: GraphHandle
    table: ArrayPublication

    @property
    def names(self) -> Tuple[str, ...]:
        return self.graph.names + self.table.names


def _vertex_ranges(n: int, chunk: int) -> List[Tuple[int, int]]:
    if n <= 0:
        return [(0, 0)]
    return [(a, min(a + chunk, n)) for a in range(0, n, chunk)]


def _touched_chunks(touched: Iterable[int], chunk: int) -> Set[int]:
    return {v // chunk for v in touched}


def _publish_graph_blocks(graph: LabeledGraph, chunk: int
                          ) -> Tuple[GraphHandle, List[str]]:
    vlabels, degrees, nbr, elab = graph.csr_arrays()
    n = graph.num_vertices
    offsets = graph._offsets
    ranges = _vertex_ranges(n, chunk)
    vl = [_create_block(vlabels[a:b]) for a, b in ranges]
    dg = [_create_block(degrees[a:b]) for a, b in ranges]
    nb = [_create_block(nbr[offsets[a]:offsets[b]]) for a, b in ranges]
    el = [_create_block(elab[offsets[a]:offsets[b]]) for a, b in ranges]
    handle = GraphHandle(
        num_vertices=n, chunk=chunk,
        vlabels=ArrayPublication(tuple(vl)),
        degrees=ArrayPublication(tuple(dg)),
        nbr=ArrayPublication(tuple(nb)),
        elab=ArrayPublication(tuple(el)))
    return handle, list(handle.names)


def _patch_chunks(prev: ArrayPublication, slices: List[Array],
                  stale: Set[int], names: List[str]
                  ) -> ArrayPublication:
    """Re-publish only stale chunks; re-lease the rest by name."""
    blocks: List[BlockHandle] = []
    for k, sl in enumerate(slices):
        old = prev.blocks[k] if k < len(prev.blocks) else None
        if (old is not None and k not in stale
                and old.shape == tuple(int(s) for s in sl.shape)):
            _retain([old.name])
            blocks.append(old)
        else:
            blocks.append(_create_block(sl))
    names.extend(b.name for b in blocks)
    return ArrayPublication(tuple(blocks))


def _publish_graph_patch_blocks(prev: GraphHandle, graph: LabeledGraph,
                                touched: Iterable[int], chunk: int
                                ) -> Tuple[GraphHandle, List[str]]:
    if chunk != prev.chunk:  # chunk policy changed: no reuse possible
        return _publish_graph_blocks(graph, chunk)
    vlabels, degrees, nbr, elab = graph.csr_arrays()
    n = graph.num_vertices
    offsets = graph._offsets
    ranges = _vertex_ranges(n, chunk)
    stale = _touched_chunks(touched, chunk)
    names: List[str] = []
    vl = _patch_chunks(prev.vlabels,
                       [vlabels[a:b] for a, b in ranges], stale, names)
    dg = _patch_chunks(prev.degrees,
                       [degrees[a:b] for a, b in ranges], stale, names)
    nb = _patch_chunks(prev.nbr,
                       [nbr[offsets[a]:offsets[b]] for a, b in ranges],
                       stale, names)
    el = _patch_chunks(prev.elab,
                       [elab[offsets[a]:offsets[b]] for a, b in ranges],
                       stale, names)
    handle = GraphHandle(num_vertices=n, chunk=chunk, vlabels=vl,
                         degrees=dg, nbr=nb, elab=el)
    return handle, names


def publish_graph(graph: LabeledGraph, *, chunk: int = DEFAULT_CHUNK
                  ) -> Tuple[GraphHandle, BlockLease]:
    """Place a graph's CSR arrays into shared blocks."""
    handle, names = _publish_graph_blocks(graph, chunk)
    return handle, BlockLease(names)


def publish_graph_patch(prev: GraphHandle, graph: LabeledGraph,
                        touched: Iterable[int], *,
                        chunk: int = DEFAULT_CHUNK
                        ) -> Tuple[GraphHandle, BlockLease]:
    """Publish a patched snapshot, sharing untouched chunks with
    ``prev`` (O(changes) new shared memory, not O(|G|)).

    ``touched`` must cover every vertex whose label, degree, or
    incidence row differs from ``prev``'s graph — for a
    :meth:`~repro.graph.labeled_graph.LabeledGraph.apply_changes`
    commit that is exactly
    :attr:`~repro.dynamic.graph.CommitResult.touched_vertices`.
    """
    handle, names = _publish_graph_patch_blocks(prev, graph, touched,
                                                chunk)
    return handle, BlockLease(names)


def _publish_table_blocks(table: Array, chunk: int,
                          prev: Optional[ArrayPublication] = None,
                          touched: Optional[Iterable[int]] = None
                          ) -> Tuple[ArrayPublication, List[str]]:
    n = int(table.shape[0])
    ranges = _vertex_ranges(n, chunk)
    slices = [table[a:b] for a, b in ranges]
    names: List[str] = []
    if prev is None:
        pub = ArrayPublication(tuple(_create_block(sl) for sl in slices))
        names.extend(pub.names)
    else:
        stale = _touched_chunks(touched or (), chunk)
        pub = _patch_chunks(prev, slices, stale, names)
    return pub, names


def publish_signature(table: SignatureTable, *,
                      chunk: int = DEFAULT_CHUNK
                      ) -> Tuple[SignatureHandle, BlockLease]:
    """Place a signature table's rows into shared blocks."""
    pub, names = _publish_table_blocks(table.table, chunk)
    return (SignatureHandle(table=pub, column_first=table.column_first),
            BlockLease(names))


def _publish_pcsr_blocks(store: PCSRStorage
                         ) -> Tuple[PCSRStoreHandle, List[str]]:
    parts: List[PCSRPartitionHandle] = []
    names: List[str] = []
    for label in sorted(store._parts):
        part = store._parts[label]
        handle = PCSRPartitionHandle(
            label=int(label), gpn=part.gpn,
            num_groups=part.num_groups, ci_len=part._ci_len,
            dead_words=part._dead_words,
            groups=ArrayPublication((_create_block(part.groups),)),
            ci=ArrayPublication((_create_block(part.ci),)),
            region_start=ArrayPublication(
                (_create_block(part._region_start),)),
            region_cap=ArrayPublication(
                (_create_block(part._region_cap),)))
        parts.append(handle)
        names.extend(handle.names)
    return PCSRStoreHandle(gpn=store.gpn, parts=tuple(parts)), names


def publish_pcsr(store: PCSRStorage
                 ) -> Tuple[PCSRStoreHandle, BlockLease]:
    """Place a PCSR store's group and ci arrays into shared blocks."""
    handle, names = _publish_pcsr_blocks(store)
    return handle, BlockLease(names)


def publish_engine(engine: GSIEngine, *, epoch: int,
                   chunk: int = DEFAULT_CHUNK
                   ) -> Tuple[EngineArtifactsHandle, BlockLease]:
    """Publish a live :class:`GSIEngine`'s artifacts under one lease.

    PCSR stores ship as blocks; any other store kind (or an injected
    subclass) is omitted and rebuilt deterministically worker-side from
    the attached graph + config.
    """
    with get_tracer().span("shm.publish_engine", epoch=epoch) as span:
        graph_h, names = _publish_graph_blocks(engine.graph, chunk)
        sig_pub, sig_names = _publish_table_blocks(
            engine.signature_table.table, chunk)
        names.extend(sig_names)
        store_h: Optional[PCSRStoreHandle] = None
        if type(engine.store) is PCSRStorage:
            store_h, store_names = _publish_pcsr_blocks(engine.store)
            names.extend(store_names)
        handle = EngineArtifactsHandle(
            epoch=epoch, graph=graph_h,
            signature=SignatureHandle(
                table=sig_pub,
                column_first=engine.signature_table.column_first),
            store=store_h)
        span.set_attribute("segments", len(names))
    return handle, BlockLease(names)


def publish_snapshot(graph: LabeledGraph, table: Array, *,
                     epoch: int, chunk: int = DEFAULT_CHUNK
                     ) -> Tuple[GraphSnapshotHandle, BlockLease]:
    """Publish a stream snapshot (graph + signature rows) in full."""
    with get_tracer().span("shm.publish_snapshot",
                           epoch=epoch) as span:
        graph_h, names = _publish_graph_blocks(graph, chunk)
        pub, table_names = _publish_table_blocks(table, chunk)
        names.extend(table_names)
        span.set_attribute("segments", len(names))
    return (GraphSnapshotHandle(epoch=epoch, graph=graph_h, table=pub),
            BlockLease(names))


def publish_snapshot_patch(prev: GraphSnapshotHandle,
                           graph: LabeledGraph, table: Array,
                           touched: Iterable[int], *, epoch: int,
                           chunk: int = DEFAULT_CHUNK
                           ) -> Tuple[GraphSnapshotHandle, BlockLease]:
    """Publish a committed snapshot, reusing every chunk untouched by
    the batch (graph rows and signature rows alike change only at
    touched vertices — vertex labels are immutable)."""
    touched = set(touched)
    with get_tracer().span("shm.publish_snapshot_patch", epoch=epoch,
                           touched=len(touched)) as span:
        graph_h, names = _publish_graph_patch_blocks(prev.graph, graph,
                                                     touched, chunk)
        pub, table_names = _publish_table_blocks(
            table, chunk, prev=prev.table, touched=touched)
        names.extend(table_names)
        span.set_attribute("segments", len(names))
    return (GraphSnapshotHandle(epoch=epoch, graph=graph_h, table=pub),
            BlockLease(names))


# ----------------------------------------------------------------------
# Attach: worker-side reconstruction, memoized per publication
# ----------------------------------------------------------------------

_ATTACH_CACHE: "OrderedDict[object, object]" = OrderedDict()
_ATTACH_CACHE_CAP = 8


def _memo_attach(key: Hashable, build: Callable[[], Any]) -> Any:
    """LRU attach memo: repeated batches over one publication attach
    once per worker.  Eviction only drops this cache's reference —
    attached objects keep their own mappings alive via ``_shm_refs``."""
    hit = _ATTACH_CACHE.get(key)
    if hit is not None:
        _ATTACH_CACHE.move_to_end(key)
        return hit
    value = build()
    _ATTACH_CACHE[key] = value
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_CAP:
        _ATTACH_CACHE.popitem(last=False)
    return value


def _build_graph(handle: GraphHandle) -> LabeledGraph:
    segs: List[shared_memory.SharedMemory] = []
    vlabels, s = _attach_publication(handle.vlabels)
    segs.extend(s)
    degrees, s = _attach_publication(handle.degrees)
    segs.extend(s)
    nbr, s = _attach_publication(handle.nbr)
    segs.extend(s)
    elab, s = _attach_publication(handle.elab)
    segs.extend(s)
    n = handle.num_vertices
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])

    graph = object.__new__(LabeledGraph)
    graph._vlabels = vlabels
    graph._offsets = offsets
    graph._nbr = nbr
    graph._elab = elab
    # Vectorized metadata rebuild from the CSR arrays: each undirected
    # edge appears once with src < dst.
    src = np.repeat(np.arange(n, dtype=np.int64), offsets[1:] - offsets[:-1])
    mask = src < nbr
    lo, hi, lab = src[mask], nbr[mask], elab[mask]
    graph._edge_map = dict(zip(zip(lo.tolist(), hi.tolist()),
                               lab.tolist()))
    labels, counts = np.unique(lab, return_counts=True)
    graph._edge_label_freq = dict(zip(labels.tolist(), counts.tolist()))
    graph._shm_refs = segs  # keep the mappings alive with the graph
    return graph


def attach_graph(handle: GraphHandle) -> LabeledGraph:
    """Reconstruct a read-only :class:`LabeledGraph` from shared blocks."""
    return _memo_attach(handle, lambda: _build_graph(handle))


def _build_signature(handle: SignatureHandle) -> SignatureTable:
    table, segs = _attach_publication(handle.table)
    sig = SignatureTable(table, column_first=handle.column_first)
    sig._shm_refs = segs
    return sig


def attach_signature(handle: SignatureHandle) -> SignatureTable:
    """Reconstruct a read-only :class:`SignatureTable`."""
    return _memo_attach(handle, lambda: _build_signature(handle))


def _build_partition(handle: PCSRPartitionHandle,
                     segs: List[shared_memory.SharedMemory]
                     ) -> PCSRPartition:
    part = object.__new__(PCSRPartition)
    part.gpn = handle.gpn
    part.label = handle.label
    part.num_groups = handle.num_groups
    part.groups, s = _attach_publication(handle.groups)
    segs.extend(s)
    part._ci_buf, s = _attach_publication(handle.ci)
    segs.extend(s)
    part._region_start, s = _attach_publication(handle.region_start)
    segs.extend(s)
    part._region_cap, s = _attach_publication(handle.region_cap)
    segs.extend(s)
    part._ci_len = handle.ci_len
    part._dead_words = handle.dead_words
    # Key slots fill contiguously from slot 0 (a validate() invariant),
    # and a group is in the empty pool iff it holds no keys: chain
    # extension targets receive a key immediately and keys are never
    # evicted, so both containers are derivable from the group layer.
    kpg = (part.groups[:, :handle.gpn - 1, 0] != _EMPTY_SLOT).sum(axis=1)
    part._keys_per_group = [int(k) for k in kpg]
    part._empty_pool = {gid for gid, k in enumerate(part._keys_per_group)
                        if k == 0}
    return part


def _build_pcsr(handle: PCSRStoreHandle) -> PCSRStorage:
    segs: List[shared_memory.SharedMemory] = []
    store = object.__new__(PCSRStorage)
    store.gpn = handle.gpn
    store._parts = {p.label: _build_partition(p, segs)
                    for p in handle.parts}
    store._shm_refs = segs
    return store


def attach_pcsr(handle: PCSRStoreHandle) -> PCSRStorage:
    """Reconstruct a read-only :class:`PCSRStorage`."""
    return _memo_attach(handle, lambda: _build_pcsr(handle))


def attach_snapshot(handle: GraphSnapshotHandle
                    ) -> Tuple[LabeledGraph, Array]:
    """Attach a stream snapshot: ``(graph, signature-table rows)``."""
    def build() -> Tuple[LabeledGraph, Array, Any]:
        graph = attach_graph(handle.graph)
        table, segs = _attach_publication(handle.table)
        return graph, table, segs

    graph, table, _segs = _memo_attach(handle, build)
    return graph, table


def attach_engine(handle: EngineArtifactsHandle,
                  config: Optional[GSIConfig]) -> "GSIEngine":
    """Build a worker-side :class:`GSIEngine` over attached artifacts."""
    from repro.core.engine import GSIEngine

    graph = attach_graph(handle.graph)
    signature = attach_signature(handle.signature)
    store = (attach_pcsr(handle.store) if handle.store is not None
             else None)
    return GSIEngine(graph, config, signature_table=signature,
                     store=store)
