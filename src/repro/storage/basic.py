"""Basic Representation (Figure 11a): per-label CSR with full offset rows.

Every edge-label partition keeps a row-offset array over the *entire*
vertex set, so lookup is O(1) by direct indexing — but space is
O(|E| + |L_E| x |V|), which the paper shows is unscalable for graphs like
DBpedia with tens of thousands of edge labels.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arraytypes import Array
from repro.gpusim.transactions import contiguous_read
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.partition import partition_by_edge_label
from repro.storage.base import EMPTY, NeighborStore


class _PerLabelBasic:
    """One label's full-width CSR: offsets over all |V| vertices."""

    def __init__(self, num_vertices: int,
                 items: List[Tuple[int, Array]]) -> None:
        self.offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        chunks = []
        degree = np.zeros(num_vertices, dtype=np.int64)
        for v, nbrs in items:
            degree[v] = len(nbrs)
            chunks.append(nbrs)
        np.cumsum(degree, out=self.offsets[1:])
        self.ci = (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=np.int64))

    def neighbors(self, v: int) -> Array:
        lo, hi = self.offsets[v], self.offsets[v + 1]
        if lo == hi:
            return EMPTY
        return self.ci[lo:hi]


class BasicRepresentation(NeighborStore):
    """All edge-label partitions, each with a |V|-wide offset layer."""

    kind = "basic"

    def __init__(self, graph: LabeledGraph) -> None:
        self._n = graph.num_vertices
        self._tables: Dict[int, _PerLabelBasic] = {}
        for lab, part in partition_by_edge_label(graph).items():
            self._tables[lab] = _PerLabelBasic(self._n, part.items())

    def neighbors(self, v: int, label: int) -> Array:
        table = self._tables.get(label)
        if table is None:
            return EMPTY
        return table.neighbors(v)

    def locate_transactions(self, v: int, label: int) -> int:
        # Direct index into the per-label offset array: one transaction
        # fetches the (begin, end) pair.
        return 0 if label not in self._tables else 1

    def read_transactions(self, v: int, label: int) -> int:
        return contiguous_read(len(self.neighbors(v, label)))

    def space_words(self) -> int:
        total = 0
        for table in self._tables.values():
            total += len(table.offsets) + len(table.ci)
        return total
