"""Graph storage structures with memory-transaction accounting (Sec. IV)."""

from repro.storage.base import NeighborStore
from repro.storage.basic import BasicRepresentation
from repro.storage.compressed import CompressedRepresentation
from repro.storage.csr import CSRStorage
from repro.storage.factory import build_storage, storage_kinds
from repro.storage.pcsr import PCSRPartition, PCSRStorage, default_hash

__all__ = [
    "NeighborStore",
    "BasicRepresentation",
    "CompressedRepresentation",
    "CSRStorage",
    "build_storage",
    "storage_kinds",
    "PCSRPartition",
    "PCSRStorage",
    "default_hash",
]
