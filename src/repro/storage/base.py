"""Common interface for graph storage structures (Section IV, Table II).

Every structure answers the same functional question — ``N(v, l)`` — but
with a different *memory-transaction* profile.  The interface therefore
exposes both the answer and the counted cost of producing it:

``locate_transactions``
    Transactions spent finding where v's l-neighbors live (the row-offset
    walk: 1 for BR/PCSR, a binary search for CR, a full neighbor scan for
    plain CSR).
``read_transactions``
    Transactions spent streaming the neighbor list itself out of global
    memory once located.
``lookup``
    The functional neighbors, with both costs recorded into a meter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Optional

import numpy as np

from repro.arraytypes import Array
from repro.gpusim.constants import LABEL_STORAGE_LOCATE, LABEL_STORAGE_READ
from repro.gpusim.meter import MemoryMeter

EMPTY = np.empty(0, dtype=np.int64)


class NeighborStore(ABC):
    """Abstract N(v, l) provider with transaction accounting."""

    #: short identifier used by the factory and benchmark tables
    kind: str = "abstract"

    @abstractmethod
    def neighbors(self, v: int, label: int) -> Array:
        """Sorted ``N(v, l)``; empty array if none."""

    @abstractmethod
    def locate_transactions(self, v: int, label: int) -> int:
        """Global-memory transactions needed to *locate* ``N(v, l)``."""

    @abstractmethod
    def read_transactions(self, v: int, label: int) -> int:
        """Transactions needed to stream the located list (CSR pays for
        the whole unfiltered neighborhood here)."""

    @abstractmethod
    def space_words(self) -> int:
        """Total 4-byte words the structure occupies (Table II space)."""

    def stats(self) -> Dict[str, Any]:
        """Health/size counters for monitoring surfaces (batch and
        stream reports).  PCSR-backed stores override this with richer
        occupancy / dead-space detail."""
        return {"kind": self.kind, "space_words": self.space_words()}

    def streamed_elements(self, v: int, label: int) -> int:
        """Elements a warp actually streams/inspects to produce N(v, l).

        Per-label stores stream exactly the answer; plain CSR must scan
        the whole neighborhood (thread underutilization), so it
        overrides this with ``deg(v)``.
        """
        return len(self.neighbors(v, label))

    def lookup(self, v: int, label: int,
               meter: Optional[MemoryMeter] = None) -> Array:
        """Metered ``N(v, l)``: records locate + read transactions."""
        result = self.neighbors(v, label)
        if meter is not None:
            meter.add_gld(self.locate_transactions(v, label),
                          label=LABEL_STORAGE_LOCATE)
            meter.add_gld(self.read_transactions(v, label),
                          label=LABEL_STORAGE_READ)
        return result

    def lookup_transactions(self, v: int, label: int) -> int:
        """Total transactions for one ``N(v, l)`` extraction."""
        return (self.locate_transactions(v, label)
                + self.read_transactions(v, label))
