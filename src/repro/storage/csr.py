"""Traditional 3-layer CSR (Figure 10): the baseline storage structure.

One row-offset array over all vertices, one column-index array holding all
neighbor lists, and one edge-value array with the labels.  Extracting
``N(v, l)`` must scan *every* neighbor of ``v`` and check its edge label,
so the cost is O(|N(v)|) transactions-wise and suffers thread
underutilization (threads holding wrong-label neighbors are wasted).
"""

from __future__ import annotations

import numpy as np

from repro.arraytypes import Array
from repro.gpusim.transactions import contiguous_read
from repro.graph.labeled_graph import LabeledGraph
from repro.storage.base import EMPTY, NeighborStore


class CSRStorage(NeighborStore):
    """Whole-graph CSR with an edge-label layer."""

    kind = "csr"

    def __init__(self, graph: LabeledGraph) -> None:
        self._graph = graph
        n = graph.num_vertices
        self._offsets = np.zeros(n + 1, dtype=np.int64)
        for v in range(n):
            self._offsets[v + 1] = self._offsets[v] + graph.degree(v)

    def neighbors(self, v: int, label: int) -> Array:
        arr = self._graph.neighbors_by_label(v, label)
        if len(arr) == 0:
            return EMPTY
        return np.sort(arr)

    def locate_transactions(self, v: int, label: int) -> int:
        # One transaction fetches the (begin, end) offset pair.
        return 1

    def read_transactions(self, v: int, label: int) -> int:
        # Must stream the full neighborhood *and* the parallel edge-label
        # array, then discard non-matching entries.
        deg = self._graph.degree(v)
        return contiguous_read(deg) * 2

    def streamed_elements(self, v: int, label: int) -> int:
        # Every neighbor is inspected; wrong-label lanes are wasted.
        return self._graph.degree(v)

    def space_words(self) -> int:
        n = self._graph.num_vertices
        m2 = 2 * self._graph.num_edges
        return (n + 1) + m2 + m2  # offsets + column index + edge values
