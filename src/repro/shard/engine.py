"""Scatter-gather query coordinator over a :class:`ShardedGraph`.

A :class:`ShardedEngine` owns one
:class:`~repro.core.engine.GSIEngine` per shard (each with its own
shard-local signature table and storage structure) plus one shared
:class:`~repro.service.plan_cache.PlanCache`.  Serving a query is a
scatter-gather:

1. **Prepare once** — the query is validated (connected, radius within
   the halo depth), its anchor vertex (a query center) is fixed, and
   filtering runs against every shard's signature table.  Join-order
   planning happens once: the first shard to need a plan populates the
   shared plan cache and every other shard replays it through the
   canonical fingerprint (any join order is correct on any shard; only
   cost accounting could differ, never matches).
2. **Scatter** — the per-shard prepared queries fan out through the
   existing :class:`~repro.service.executors.QueryExecutor` layer
   (serial / thread / process).  Process pools bootstrap the per-shard
   engines once per worker from
   :class:`~repro.service.executors.EngineBuildSpec` objects — on the
   default shm data plane those carry shared-memory handles the worker
   attaches read-only (:mod:`repro.storage.shm`), so the per-batch
   context pickles in O(handle) bytes — and cache them per
   ``(epoch, shard)``; in-process executors execute on the live
   engines directly.
3. **Gather** — shard-local matches are translated back to global
   vertex ids and deduplicated by **anchor ownership**: a shard only
   reports a match whose anchor image it owns.  By the halo containment
   argument (see :mod:`repro.shard.sharded_graph`), this partition of
   the match set is exact — identical to a single engine over the whole
   graph.  Per-shard transaction / cache / storage statistics merge
   into a :class:`ShardReport`; merged per-query counters keep
   per-shard attribution via
   :func:`~repro.gpusim.meter.merge_shard_snapshots`.

Simulated semantics: each (query, shard) pair runs on its own simulated
device, so a merged query's ``elapsed_ms`` is the scatter-gather
*makespan* — the slowest shard — and its transaction counters are the
sum over shards.  Only the *match set* is guaranteed identical to the
single-engine path; simulated totals change shape with the shard count
(that shift is exactly what :mod:`benchmarks.bench_shard_scaling`
measures).
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine, PreparedQuery
from repro.core.result import MatchResult, PhaseBreakdown
from repro.errors import GraphError
from repro.gpusim.meter import merge_shard_snapshots
from repro.graph.labeled_graph import LabeledGraph
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    Span,
    TraceContext,
    get_tracer,
    shipped_spans,
)
from repro.service.executors import (
    EngineBuildSpec,
    ExecutedQuery,
    QueryExecutor,
    SerialExecutor,
    _execute_one,
)
from repro.service.plan_cache import (
    CacheStats,
    CandidateShapeCache,
    PlanCache,
)
from repro.shard.sharded_graph import ShardedGraph, ShardingInfo
from repro.storage.shm import BlockLease, publish_engine


def query_center(query: LabeledGraph) -> Tuple[int, int]:
    """``(anchor vertex, radius)`` of a connected query graph.

    The anchor is a vertex of minimum eccentricity (lowest id on ties);
    its eccentricity is the query radius, the halo depth needed to
    answer the query shard-locally.  Raises
    :class:`~repro.errors.GraphError` for empty or disconnected
    queries (a disconnected query has no finite radius, so no halo
    depth makes shard-local matching complete).
    """
    n = query.num_vertices
    if n == 0:
        raise GraphError("empty query")
    best_u, best_ecc = 0, -1
    for u in range(n):
        dist = [-1] * n
        dist[u] = 0
        todo = deque([u])
        while todo:
            v = todo.popleft()
            for w in query.neighbors(v):
                w = int(w)
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    todo.append(w)
        if min(dist) < 0:
            raise GraphError(
                "sharded execution requires a connected query")
        ecc = max(dist)
        if best_ecc < 0 or ecc < best_ecc:
            best_u, best_ecc = u, ecc
    return best_u, best_ecc


class _ShardPlanView:
    """Per-shard view of the shared plan cache.

    Join *plans* are shared across shards (a plan is valid on any
    graph, and the canonical fingerprint replays it), but the
    candidate-*shape* memo must be per shard: cached candidate ids are
    only meaningful against the shard's own signature table, and one
    shared memo would rebind — and therefore clear — on every shard
    switch, silently degrading every lookup to a miss.  Each view
    delegates plan lookups/stores to the shared :class:`PlanCache` and
    owns a private :class:`CandidateShapeCache` bound to its shard,
    sharing the cache's lock and stats so snapshots stay consistent.
    """

    def __init__(self, plans: PlanCache) -> None:
        self._plans = plans
        self.shapes = CandidateShapeCache(
            capacity=plans.shapes.capacity, stats=plans.stats,
            lock=plans._lock)

    def lookup(self, query: LabeledGraph):
        return self._plans.lookup(query)

    def store(self, fingerprint, plan, edge_labels=None) -> None:
        self._plans.store(fingerprint, plan, edge_labels=edge_labels)


# ----------------------------------------------------------------------
# Executor fan-out plumbing (mirrors the stream engine's _DeltaContext)
# ----------------------------------------------------------------------

_EPOCHS = itertools.count(1)

#: per-worker-process cache of shard engines, keyed (epoch, shard id)
_WORKER_SHARD_ENGINES: Dict[Tuple[int, int], GSIEngine] = {}


class _ShardContext:
    """Batch-constant fan-out context.

    In-process executors use the ``engines`` list directly.  Pickling
    (the process executor) drops it and ships the per-shard
    :class:`EngineBuildSpec` tuple instead; a worker builds an engine
    only for the shards its chunks actually touch — lazily, cached per
    ``(epoch, shard)`` — so repeated batches against the same
    :class:`ShardedEngine` re-bootstrap nothing and no worker holds
    engines for shards it never executes.

    On the default shm data plane the specs carry
    :class:`~repro.storage.shm.EngineArtifactsHandle` objects instead
    of graphs (see :meth:`ShardedEngine._shm_context`), so the context
    pickles in O(handle) bytes per chunk per batch regardless of the
    replicated graph size; workers attach the published segments
    read-only by name.  :meth:`ShardedEngine.rebuild` bumps the epoch
    and retires the old publication, so a worker holding stale handles
    re-attaches (or fails loudly with
    :class:`~repro.storage.shm.StaleHandleError`) instead of silently
    reading superseded arrays.
    """

    def __init__(self, epoch: int, specs: Tuple[EngineBuildSpec, ...],
                 engines: Optional[List[GSIEngine]]) -> None:
        self.epoch = epoch
        self.specs = specs
        self.engines = engines
        # Coordinator trace context, refreshed per run_batch; it rides
        # the pickle so worker-side spans re-parent into the batch tree.
        self.trace: Optional[TraceContext] = None

    def __getstate__(self) -> dict:
        return {"epoch": self.epoch, "specs": self.specs,
                "trace": self.trace}

    def __setstate__(self, state: dict) -> None:
        self.epoch = state["epoch"]
        self.specs = state["specs"]
        self.engines = None
        self.trace = state.get("trace")


def _context_engine(ctx: _ShardContext, shard_id: int) -> GSIEngine:
    if ctx.engines is not None:
        return ctx.engines[shard_id]
    key = (ctx.epoch, shard_id)
    engine = _WORKER_SHARD_ENGINES.get(key)
    if engine is None:
        # One sharded engine per worker at a time keeps memory bounded:
        # a new epoch evicts every older epoch's engines.
        stale = [k for k in _WORKER_SHARD_ENGINES if k[0] != ctx.epoch]
        for k in stale:
            del _WORKER_SHARD_ENGINES[k]
        engine = ctx.specs[shard_id].build()
        _WORKER_SHARD_ENGINES[key] = engine
    return engine


#: fan-out payload: (task index, shard id, prepared query)
_ShardTask = Tuple[int, int, PreparedQuery]


def _execute_shard_task(ctx: _ShardContext,
                        payload: _ShardTask) -> ExecutedQuery:
    """Module-level worker function (picklable by reference).

    In a process worker the spans recorded here (the ``shard.execute``
    wrapper plus the engine's own ``gsi.execute`` tree) ship back in
    :attr:`~repro.service.executors.ExecutedQuery.spans`; the
    coordinator absorbs and empties them during the gather phase.
    """
    index, shard_id, prepared = payload
    with shipped_spans(ctx.trace) as spans:
        with get_tracer().span("shard.execute", parent=prepared.trace,
                               shard=shard_id):
            item = _execute_one(_context_engine(ctx, shard_id), index,
                                prepared, "GSI-shard")
    item.spans = spans
    return item


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class ShardQueryStats:
    """One (query, shard) outcome inside a sharded batch."""

    shard: int
    #: matches the shard found in its subgraph (before ownership dedup)
    raw_matches: int
    #: matches whose anchor the shard owns (what it contributes)
    owned_matches: int
    elapsed_ms: float
    #: simulated memory transactions (GLD + GST) this shard spent
    transactions: int
    plan_cached: bool
    timed_out: bool
    error: Optional[str] = None


@dataclass
class ShardedItem:
    """One query's merged outcome (submission order preserved)."""

    index: int
    result: MatchResult
    per_shard: List[ShardQueryStats] = field(default_factory=list)
    plan_cached: bool = False
    host_ms: float = 0.0
    error: Optional[str] = None


@dataclass
class ShardReport:
    """Aggregate outcome of one :meth:`ShardedEngine.run_batch` call."""

    items: List[ShardedItem] = field(default_factory=list)
    wall_clock_ms: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    executor: str = ""
    #: per-shard simulated transaction totals over the whole batch
    shard_transactions: List[int] = field(default_factory=list)
    #: per-shard ``NeighborStore.stats()`` at batch end
    storage: List[dict] = field(default_factory=list)
    #: sharding layout / replication statistics
    info: Optional[ShardingInfo] = None

    @property
    def results(self) -> List[MatchResult]:
        return [item.result for item in self.items]

    @property
    def num_queries(self) -> int:
        return len(self.items)

    @property
    def errors(self) -> int:
        return sum(1 for item in self.items if item.error is not None)

    @property
    def timeouts(self) -> int:
        return sum(1 for item in self.items if item.result.timed_out)

    @property
    def total_matches(self) -> int:
        return sum(item.result.num_matches for item in self.items)

    @property
    def max_shard_transactions(self) -> int:
        """The busiest shard's simulated transaction total — the
        scatter-gather bottleneck the scaling bench tracks."""
        return max(self.shard_transactions, default=0)

    @property
    def total_transactions(self) -> int:
        return sum(self.shard_transactions)

    def summary_line(self) -> str:
        info = self.info
        layout = (f"{info.num_shards} shards ({info.partitioner}, "
                  f"halo {info.halo_hops}, "
                  f"{info.vertex_replication:.2f}x replication)"
                  if info is not None else "unsharded")
        return (f"{self.num_queries} queries over {layout} in "
                f"{self.wall_clock_ms:.0f} ms wall via {self.executor} | "
                f"matches={self.total_matches} "
                f"timeouts={self.timeouts} errors={self.errors} | "
                f"tx max/total = {self.max_shard_transactions}/"
                f"{self.total_transactions} | "
                f"plan cache {self.cache.hits}/{self.cache.lookups} hits")


@dataclass
class ShardedPrepared:
    """Everything the gather phase needs about one prepared query."""

    query: LabeledGraph
    anchor_u: int
    radius: int
    per_shard: List[PreparedQuery] = field(default_factory=list)
    plan_cached: bool = False
    prepare_ms: float = 0.0


# ----------------------------------------------------------------------


class ShardedEngine:
    """Scatter-gather subgraph matching over a :class:`ShardedGraph`.

    Parameters
    ----------
    sharded:
        The partitioned graph (shards already materialized).
    config:
        Engine configuration applied to every shard engine.
    cache_capacity:
        Shared plan-cache size (one cache across all shards — the
        canonical fingerprint makes one planning pass serve them all).
    executor:
        Default :class:`~repro.service.executors.QueryExecutor` for the
        scatter phase; ``None`` runs shards serially.  The caller owns
        its lifecycle.
    """

    name = "GSI-shard"

    def __init__(self, sharded: ShardedGraph,
                 config: Optional[GSIConfig] = None,
                 cache_capacity: int = 256,
                 executor: Optional[QueryExecutor] = None) -> None:
        self.sharded = sharded
        self.config = config if config is not None else GSIConfig()
        self.engines = [GSIEngine(shard.graph, self.config)
                        for shard in sharded.shards]
        self.plan_cache = PlanCache(capacity=cache_capacity)
        # Plans are shared; candidate-shape memos are per shard (see
        # _ShardPlanView — a shared memo would clear on every switch).
        self._plan_views = [_ShardPlanView(self.plan_cache)
                            for _ in self.engines]
        self.executor = executor
        self._ctx = _ShardContext(
            epoch=next(_EPOCHS),
            specs=tuple(EngineBuildSpec(shard.graph, self.config)
                        for shard in sharded.shards),
            engines=self.engines)
        # shm data plane: the current per-shard publication (handle
        # specs + one lease per shard), built lazily per epoch.
        self._plane: Optional[
            Tuple[_ShardContext, List[BlockLease]]] = None

    @property
    def num_shards(self) -> int:
        return self.sharded.num_shards

    @property
    def graph(self) -> LabeledGraph:
        """The full (unsharded) data graph."""
        return self.sharded.graph

    # ------------------------------------------------------------------
    # The shm data plane + engine lifecycle
    # ------------------------------------------------------------------

    def _shm_context(self) -> _ShardContext:
        """The fan-out context with every shard's artifacts published
        into shared memory, built once per epoch and reused until
        :meth:`rebuild` or :meth:`close` retires it."""
        if (self._plane is not None
                and self._plane[0].epoch == self._ctx.epoch):
            return self._plane[0]
        old = self._plane
        specs: List[EngineBuildSpec] = []
        leases: List[BlockLease] = []
        for engine in self.engines:
            artifacts, lease = publish_engine(engine,
                                              epoch=self._ctx.epoch)
            specs.append(EngineBuildSpec(
                graph=None, config=self.config, artifacts=artifacts))
            leases.append(lease)
        ctx = _ShardContext(epoch=self._ctx.epoch, specs=tuple(specs),
                            engines=self.engines)
        self._plane = (ctx, leases)
        if old is not None:
            for lease in old[1]:
                lease.release()
        return ctx

    def rebuild(self) -> None:
        """Rebuild every shard engine under a fresh fan-out epoch.

        The old publication is unlinked, so worker-side engines cached
        against the previous epoch are evicted on the next task and a
        stale handle can only re-attach the *new* publication or raise
        :class:`~repro.storage.shm.StaleHandleError` — never silently
        serve superseded arrays.
        """
        self.close()
        self.engines = [GSIEngine(shard.graph, self.config)
                        for shard in self.sharded.shards]
        self._plan_views = [_ShardPlanView(self.plan_cache)
                            for _ in self.engines]
        self._ctx = _ShardContext(
            epoch=next(_EPOCHS),
            specs=tuple(EngineBuildSpec(shard.graph, self.config)
                        for shard in self.sharded.shards),
            engines=self.engines)

    def close(self) -> None:
        """Release the shard publication (idempotent).  The engine
        stays usable; the next shm-plane batch republishes."""
        plane, self._plane = self._plane, None
        if plane is not None:
            for lease in plane[1]:
                lease.release()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def prepare(self, query: LabeledGraph) -> ShardedPrepared:
        """Validate + filter the query on every shard; plan once.

        Raises :class:`~repro.errors.GraphError` when the query is
        empty, disconnected, or its radius exceeds the sharded graph's
        halo depth (a deeper halo is required for exact shard-local
        matching — rebuild the :class:`ShardedGraph` with larger
        ``halo_hops``).
        """
        t0 = time.perf_counter()
        anchor_u, radius = query_center(query)
        if radius > self.sharded.halo_hops:
            raise GraphError(
                f"query radius {radius} exceeds the sharded graph's "
                f"halo depth {self.sharded.halo_hops}; rebuild with "
                f"halo_hops >= {radius} for exact sharded matching")
        per_shard = [engine.prepare(query, plan_cache=view)
                     for engine, view in zip(self.engines,
                                             self._plan_views)]
        planned = [p.plan_cached for p in per_shard if p.plan is not None]
        return ShardedPrepared(
            query=query, anchor_u=anchor_u, radius=radius,
            per_shard=per_shard,
            plan_cached=bool(planned) and all(planned),
            prepare_ms=(time.perf_counter() - t0) * 1000.0)

    # ------------------------------------------------------------------

    def _merge(self, sp: ShardedPrepared,
               outcomes: Sequence[ExecutedQuery]
               ) -> Tuple[MatchResult, List[ShardQueryStats],
                          Optional[str]]:
        """Gather one query's shard outcomes into a merged result."""
        merged = MatchResult(engine=self.name)
        stats: List[ShardQueryStats] = []
        kept: List[tuple] = []
        error: Optional[str] = None
        owner = self.sharded.owner
        for shard_obj, prepared, out in zip(self.sharded.shards,
                                            sp.per_shard, outcomes):
            res = out.result
            owned_matches = 0
            if out.error is not None and error is None:
                error = f"shard {shard_obj.shard_id}: {out.error}"
            if res.timed_out:
                merged.timed_out = True
            if out.error is None:
                for match in res.matches:
                    gm = shard_obj.to_global(match)
                    if owner[gm[sp.anchor_u]] == shard_obj.shard_id:
                        kept.append(gm)
                        owned_matches += 1
            for u, size in res.candidate_sizes.items():
                merged.candidate_sizes[u] = (
                    merged.candidate_sizes.get(u, 0) + size)
            stats.append(ShardQueryStats(
                shard=shard_obj.shard_id,
                raw_matches=res.num_matches,
                owned_matches=owned_matches,
                elapsed_ms=res.elapsed_ms,
                transactions=res.counters.transactions,
                plan_cached=prepared.plan_cached,
                timed_out=res.timed_out,
                error=out.error))
        merged.counters = merge_shard_snapshots(
            [out.result.counters for out in outcomes])
        # Scatter-gather latency semantics: the batch is only done when
        # the slowest shard answers.
        merged.elapsed_ms = max(
            (out.result.elapsed_ms for out in outcomes), default=0.0)
        filter_ms = max((p.filter_ms for p in sp.per_shard), default=0.0)
        merged.phases = PhaseBreakdown(
            filter_ms=filter_ms,
            join_ms=max(0.0, merged.elapsed_ms - filter_ms))
        if error is not None:
            # A failed shard breaks the completeness argument; never
            # return a silently partial match set.
            merged.matches = []
        else:
            merged.matches = sorted(kept)
        return merged, stats, error

    # ------------------------------------------------------------------

    def match(self, query: LabeledGraph) -> MatchResult:
        """Single-query scatter-gather (serial, in-process).

        Raises on invalid queries and on shard-side failures; use
        :meth:`run_batch` for per-item error isolation.
        """
        sp = self.prepare(query)
        outcomes = [
            _execute_one(engine, s, prepared, self.name)
            for s, (engine, prepared)
            in enumerate(zip(self.engines, sp.per_shard))]
        merged, _, error = self._merge(sp, outcomes)
        if error is not None:
            raise RuntimeError(f"sharded match failed: {error}")
        return merged

    # ------------------------------------------------------------------

    def _resolve_executor(self, executor: Optional[QueryExecutor]
                          ) -> Tuple[QueryExecutor, bool]:
        if executor is not None:
            return executor, False
        if self.executor is not None:
            return self.executor, False
        return SerialExecutor(), True

    def run_batch(self, queries: Sequence[LabeledGraph],
                  executor: Optional[QueryExecutor] = None) -> ShardReport:
        """Serve one batch of queries; results keep submission order.

        Phase 1 prepares every query serially in this process (shared
        plan-cache accounting stays deterministic under every
        executor); phase 2 scatters all (query, shard) execution tasks
        through the executor at once — so shard work from different
        queries overlaps freely — and phase 3 gathers, dedups by anchor
        ownership, and merges.  A query that fails validation or loses
        a shard reports a per-item error; the rest of the batch is
        unaffected.
        """
        chosen, owned = self._resolve_executor(executor)
        with get_tracer().span("shard.run_batch",
                               queries=len(queries),
                               shards=self.num_shards,
                               executor=chosen.name) as span:
            report = self._run_batch_inner(queries, chosen, owned, span)
            span.set_attribute("matches", report.total_matches)
        self._record_shard_metrics(report)
        return report

    @staticmethod
    def _record_shard_metrics(report: ShardReport) -> None:
        """Roll one batch's per-shard totals into the registry."""
        transactions = get_registry().counter(
            "gsi_shard_transactions_total",
            "Simulated memory transactions by shard.")
        for shard_id, total in enumerate(report.shard_transactions):
            if total:
                transactions.inc(float(total), shard=str(shard_id))

    def _run_batch_inner(self, queries: Sequence[LabeledGraph],
                         chosen: QueryExecutor, owned: bool,
                         span: Span) -> ShardReport:
        tracer = get_tracer()
        stats_before = self.plan_cache.stats_snapshot()
        start = time.perf_counter()
        num_shards = self.num_shards

        items: List[Optional[ShardedItem]] = [None] * len(queries)
        prepared_ok: Dict[int, ShardedPrepared] = {}
        payloads: List[_ShardTask] = []
        with tracer.span("shard.prepare", queries=len(queries)):
            for index, query in enumerate(queries):
                try:
                    sp = self.prepare(query)
                except Exception as exc:  # noqa: BLE001 - one bad query
                    # must never abort the rest of the batch; report it
                    # per item.
                    items[index] = ShardedItem(
                        index=index,
                        result=MatchResult(engine=self.name),
                        error=f"{type(exc).__name__}: {exc}")
                    continue
                prepared_ok[index] = sp
                for s in range(num_shards):
                    payloads.append((index * num_shards + s, s,
                                     sp.per_shard[s]))

        # Process executors on the shm plane get the handle-based
        # context (published lazily, reused across batches until a
        # rebuild); everything else fans out over the live engines.
        uses_shm = (getattr(chosen, "name", None) == "process"
                    and getattr(chosen, "data_plane", None) == "shm")
        ctx = self._shm_context() if uses_shm else self._ctx
        ctx.trace = span.context() if span.trace_id else None
        try:
            with tracer.span("shard.scatter", tasks=len(payloads)):
                outcomes = (chosen.map_tasks(_execute_shard_task,
                                             payloads, shared=ctx)
                            if payloads else [])
        finally:
            if owned:
                chosen.shutdown()
        if len(outcomes) != len(payloads):
            raise RuntimeError(
                f"executor {chosen.name!r} returned {len(outcomes)} "
                f"outcomes for {len(payloads)} tasks")
        by_index: Dict[int, ExecutedQuery] = {
            out.index: out for out in outcomes}

        shard_tx = [0] * num_shards
        with tracer.span("shard.gather", tasks=len(outcomes)):
            for out in outcomes:
                if out.spans:
                    tracer.absorb(out.spans)
                    out.spans = []
            for index, sp in prepared_ok.items():
                shard_outs = [by_index[index * num_shards + s]
                              for s in range(num_shards)]
                merged, per_shard, error = self._merge(sp, shard_outs)
                for stat in per_shard:
                    shard_tx[stat.shard] += stat.transactions
                items[index] = ShardedItem(
                    index=index, result=merged, per_shard=per_shard,
                    plan_cached=sp.plan_cached,
                    host_ms=sp.prepare_ms + max(
                        (o.execute_ms for o in shard_outs),
                        default=0.0),
                    error=error)

        wall_ms = (time.perf_counter() - start) * 1000.0
        return ShardReport(
            items=items,
            wall_clock_ms=wall_ms,
            cache=self.plan_cache.stats_snapshot().diff(stats_before),
            executor=chosen.name,
            shard_transactions=shard_tx,
            storage=[engine.store.stats() for engine in self.engines],
            info=self.sharded.info())
