"""Sharded graph subsystem: partitioned shards with halo replication
plus a scatter-gather query coordinator.

See :mod:`repro.shard.sharded_graph` for the replication/ownership
correctness argument and :mod:`repro.shard.engine` for the coordinator.
"""

from repro.shard.engine import (
    ShardedEngine,
    ShardedItem,
    ShardedPrepared,
    ShardQueryStats,
    ShardReport,
    query_center,
)
from repro.shard.partitioner import (
    PARTITIONER_KINDS,
    HashPartitioner,
    LabelAwarePartitioner,
    Partitioner,
    make_partitioner,
)
from repro.shard.sharded_graph import (
    Shard,
    ShardedGraph,
    ShardingInfo,
    halo_hops_for_query_vertices,
)

__all__ = [
    "HashPartitioner",
    "LabelAwarePartitioner",
    "PARTITIONER_KINDS",
    "Partitioner",
    "Shard",
    "ShardedEngine",
    "ShardedGraph",
    "ShardedItem",
    "ShardedPrepared",
    "ShardQueryStats",
    "ShardReport",
    "ShardingInfo",
    "halo_hops_for_query_vertices",
    "make_partitioner",
    "query_center",
]
