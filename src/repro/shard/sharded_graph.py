"""Partitioned shards with h-hop halo replication.

A :class:`ShardedGraph` splits one data graph into ``num_shards``
per-shard :class:`~repro.graph.labeled_graph.LabeledGraph` subgraphs.
Each shard materializes

* its **owned** vertices — the vertices a
  :class:`~repro.shard.partitioner.Partitioner` assigned to it — and
* an **h-hop halo** — every vertex within ``halo_hops`` hops of an
  owned vertex — as the subgraph *induced* on owned + halo.

Why this is enough (the replication/ownership argument)
-------------------------------------------------------

Subgraph isomorphism maps query edges onto data edges, so a match can
only *shrink* distances: ``d_G(m(u), m(u')) <= d_Q(u, u')`` for every
embedding ``m``.  Anchor a match at the image ``a = m(u_c)`` of a query
*center* vertex ``u_c`` (a vertex of minimum eccentricity).  Every
matched data vertex then lies within ``radius(Q)`` hops of ``a``, and
every matched data *edge* connects two such vertices — so as long as
``halo_hops >= radius(Q)``, the whole match is contained in the induced
subgraph of the shard that owns ``a``, including every edge the match
uses and every edge its signatures need to pass filtering.  Matching
runs under non-induced semantics (query edges must exist; non-edges are
unconstrained), so the shard never has to prove an edge *absent* and
the truncation at the halo boundary cannot create false matches:
every shard-local match is literally a match in ``G``.

Ownership gives exact dedup for free: every vertex has exactly one
owner, so keeping only the matches whose anchor image is owned by the
reporting shard partitions the global match set across shards — no
match is lost (its anchor's owner finds it, by the containment argument
above) and none is double-counted (only the owner reports it).
:mod:`repro.shard.engine` implements that coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.labeled_graph import LabeledGraph
from repro.shard.partitioner import Partitioner, make_partitioner

#: default halo depth covers the repo-wide default 12-vertex queries
DEFAULT_QUERY_VERTICES = 12


def halo_hops_for_query_vertices(query_vertices: int) -> int:
    """Smallest halo depth safe for any connected ``k``-vertex query.

    A connected query on ``k`` vertices has radius at most
    ``ceil((k - 1) / 2)`` (worst case: a path), so a halo this deep
    contains every possible match anchored at an owned vertex.
    """
    if query_vertices < 1:
        raise ValueError(
            f"query_vertices must be >= 1, got {query_vertices}")
    return max(1, (query_vertices - 1 + 1) // 2)


@dataclass
class Shard:
    """One shard's materialized subgraph plus its id mappings.

    ``graph`` uses dense *local* ids ``0..len(local_to_global)-1``;
    ``local_to_global`` maps them back to data-graph ids (ascending, so
    the mapping is deterministic), and ``owned_mask[local]`` says
    whether the vertex is owned (vs. halo replica).
    """

    shard_id: int
    graph: LabeledGraph
    local_to_global: np.ndarray
    owned_mask: np.ndarray

    @property
    def num_owned(self) -> int:
        return int(np.count_nonzero(self.owned_mask))

    @property
    def num_halo(self) -> int:
        return int(len(self.local_to_global)) - self.num_owned

    def to_global(self, match: tuple) -> tuple:
        """Translate a shard-local match tuple to data-graph ids."""
        l2g = self.local_to_global
        return tuple(int(l2g[v]) for v in match)


@dataclass
class ShardingInfo:
    """Aggregate sharding statistics (CLI ``shard-info``, benchmarks)."""

    num_shards: int
    partitioner: str
    halo_hops: int
    num_vertices: int
    num_edges: int
    owned_per_shard: List[int] = field(default_factory=list)
    halo_per_shard: List[int] = field(default_factory=list)
    edges_per_shard: List[int] = field(default_factory=list)

    @property
    def vertex_replication(self) -> float:
        """Sum of shard vertex counts over ``|V|`` (1.0 = no halo)."""
        if self.num_vertices == 0:
            return 1.0
        total = sum(self.owned_per_shard) + sum(self.halo_per_shard)
        return total / self.num_vertices

    @property
    def edge_replication(self) -> float:
        """Sum of shard edge counts over ``|E|``."""
        if self.num_edges == 0:
            return 1.0
        return sum(self.edges_per_shard) / self.num_edges


class ShardedGraph:
    """One data graph split into owned-plus-halo shard subgraphs.

    Parameters
    ----------
    graph:
        The data graph ``G``.
    num_shards:
        Shard count; must be >= 1.
    partitioner:
        A :class:`~repro.shard.partitioner.Partitioner` instance or one
        of the names accepted by
        :func:`~repro.shard.partitioner.make_partitioner`.
    halo_hops:
        Replication depth ``h``: each shard includes every vertex
        within ``h`` hops of its owned set.  Queries of radius up to
        ``h`` can be answered shard-locally (see the module docstring);
        deeper queries are rejected by the engine.  Defaults to the
        bound for the repo-wide default query size.
    """

    def __init__(self, graph: LabeledGraph, num_shards: int,
                 partitioner: Union[Partitioner, str] = "hash",
                 halo_hops: Optional[int] = None) -> None:
        if num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {num_shards}")
        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner)
        if halo_hops is None:
            halo_hops = halo_hops_for_query_vertices(DEFAULT_QUERY_VERTICES)
        if halo_hops < 0:
            raise ValueError(f"halo_hops must be >= 0, got {halo_hops}")
        if graph.num_vertices == 0:
            raise GraphError("cannot shard an empty graph")

        self.graph = graph
        self.num_shards = num_shards
        self.partitioner = partitioner
        self.halo_hops = halo_hops
        #: owner shard id per global vertex
        self.owner = partitioner.assign(graph, num_shards)
        if (self.owner.shape != (graph.num_vertices,)
                or self.owner.min() < 0
                or self.owner.max() >= num_shards):
            raise ValueError(
                f"partitioner {partitioner.name!r} produced an invalid "
                f"assignment")

        edge_arr = np.array([(u, v, lab) for u, v, lab in graph.edges()],
                            dtype=np.int64).reshape(-1, 3)
        self.shards: List[Shard] = [
            self._build_shard(s, edge_arr) for s in range(num_shards)]

    # ------------------------------------------------------------------

    def _halo_members(self, owned: np.ndarray) -> np.ndarray:
        """Owned vertices plus everything within ``halo_hops`` hops."""
        graph = self.graph
        member = np.zeros(graph.num_vertices, dtype=bool)
        member[owned] = True
        frontier = owned
        for _ in range(self.halo_hops):
            nxt: List[np.ndarray] = []
            for v in frontier:
                nbrs = graph.neighbors(int(v))
                if len(nbrs):
                    nxt.append(np.asarray(nbrs))
            if not nxt:
                break
            cand = np.unique(np.concatenate(nxt))
            fresh = cand[~member[cand]]
            if not len(fresh):
                break
            member[fresh] = True
            frontier = fresh
        return np.where(member)[0]

    def _build_shard(self, shard_id: int, edge_arr: np.ndarray) -> Shard:
        owned = np.where(self.owner == shard_id)[0]
        members = self._halo_members(owned)
        member_mask = np.zeros(self.graph.num_vertices, dtype=bool)
        member_mask[members] = True
        g2l = np.full(self.graph.num_vertices, -1, dtype=np.int64)
        g2l[members] = np.arange(len(members), dtype=np.int64)

        if len(edge_arr):
            keep = member_mask[edge_arr[:, 0]] & member_mask[edge_arr[:, 1]]
            kept = edge_arr[keep]
            local_edges = np.column_stack([
                g2l[kept[:, 0]], g2l[kept[:, 1]], kept[:, 2]])
        else:
            local_edges = edge_arr
        sub = LabeledGraph(self.graph.vertex_labels[members], local_edges)
        owned_mask = np.zeros(len(members), dtype=bool)
        owned_mask[g2l[owned]] = True
        return Shard(shard_id=shard_id, graph=sub,
                     local_to_global=members, owned_mask=owned_mask)

    # ------------------------------------------------------------------

    def owner_of(self, global_vertex: int) -> int:
        """The shard that owns ``global_vertex``."""
        return int(self.owner[global_vertex])

    def info(self) -> ShardingInfo:
        """Aggregate replication / balance statistics."""
        return ShardingInfo(
            num_shards=self.num_shards,
            partitioner=self.partitioner.name,
            halo_hops=self.halo_hops,
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            owned_per_shard=[s.num_owned for s in self.shards],
            halo_per_shard=[s.num_halo for s in self.shards],
            edges_per_shard=[s.graph.num_edges for s in self.shards])

    def validate(self) -> Dict[str, str]:
        """Structural self-check; returns ``{}`` when consistent.

        Checks that ownership is a partition of ``V(G)``, that every
        shard contains each owned vertex's full ``halo_hops``-hop ball,
        and that shard subgraphs agree with ``G`` on every edge they
        materialize.
        """
        problems: Dict[str, str] = {}
        counts = np.bincount(self.owner, minlength=self.num_shards)
        if int(counts.sum()) != self.graph.num_vertices:
            problems["ownership"] = "owner array does not cover V(G)"
        for shard in self.shards:
            owned_global = shard.local_to_global[shard.owned_mask]
            ball = self._halo_members(owned_global)
            members = set(int(v) for v in shard.local_to_global)
            missing = [int(v) for v in ball if int(v) not in members]
            if missing:
                problems[f"shard{shard.shard_id}"] = (
                    f"halo missing vertices {missing[:5]}")
            for u, v, lab in shard.graph.edges():
                gu = int(shard.local_to_global[u])
                gv = int(shard.local_to_global[v])
                if (not self.graph.has_edge(gu, gv)
                        or self.graph.edge_label(gu, gv) != lab):
                    problems[f"shard{shard.shard_id}/edges"] = (
                        f"edge ({gu}, {gv}) diverges from G")
                    break
        return problems

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.info()
        return (f"ShardedGraph(shards={self.num_shards}, "
                f"partitioner={self.partitioner.name!r}, "
                f"halo={self.halo_hops}, "
                f"replication={info.vertex_replication:.2f}x)")
