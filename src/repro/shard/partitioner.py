"""Vertex partitioners: who *owns* each data vertex under sharding.

A partitioner maps every vertex of the data graph to exactly one shard
(its *owner*).  Ownership drives two things downstream: which shard's
subgraph replicates a vertex's h-hop neighborhood (the halo, see
:mod:`repro.shard.sharded_graph`), and which shard gets to *report* a
match (anchor-vertex dedup in :mod:`repro.shard.engine`).  Any total
assignment is correct — partitioners only move work and replication,
never answers — so the implementations here optimize different balance
objectives:

* :class:`HashPartitioner` — deals contiguous vertex-id *blocks* to
  shards in multiplicative-hash order.  Ignores labels entirely;
  guarantees near-equal vertex counts (±1 block) while keeping each
  block contiguous, so generators that lay ids out with locality (the
  mesh/road graphs are row-major) produce shards whose h-hop halos
  stay thin instead of swallowing the whole graph.
* :class:`LabelAwarePartitioner` — balances *per-edge-label incidence*:
  vertices are grouped by their dominant incident edge label and each
  group is spread greedily (heaviest vertex first onto the lightest
  shard).  Candidate filtering and ``N(v, l)`` traffic are per-label,
  so on graphs with skewed label frequencies this evens out the label
  that actually dominates each shard's work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graph.labeled_graph import LabeledGraph

#: the names accepted by :func:`make_partitioner` (and the CLI flag)
PARTITIONER_KINDS = ("hash", "label")

#: Knuth's multiplicative hash constant (2^32 / phi)
_HASH_MULT = 2654435761


class Partitioner(ABC):
    """Assigns every vertex of a graph to exactly one shard."""

    name: str = "abstract"

    @abstractmethod
    def assign(self, graph: LabeledGraph, num_shards: int) -> np.ndarray:
        """Owner shard id per vertex: an ``int64[|V|]`` array with
        values in ``[0, num_shards)``.  Must be deterministic."""

    def _validate(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {num_shards}")


class HashPartitioner(Partitioner):
    """Deterministic block-hash assignment of vertex ids.

    Vertex ids are cut into ``blocks_per_shard * num_shards``
    contiguous blocks; blocks are ordered by a multiplicative hash of
    their block index and dealt round-robin to shards.  That keeps the
    assignment both *balanced* (every shard gets the same number of
    blocks, ±1) and *pseudo-random* (which blocks land together is
    hash-driven, not positional), while preserving the id-locality
    inside each block that keeps halo replication bounded on graphs
    whose ids carry locality.
    """

    name = "hash"

    def __init__(self, blocks_per_shard: int = 1) -> None:
        if blocks_per_shard < 1:
            raise ValueError(
                f"blocks_per_shard must be >= 1, got {blocks_per_shard}")
        self.blocks_per_shard = blocks_per_shard

    def assign(self, graph: LabeledGraph, num_shards: int) -> np.ndarray:
        self._validate(num_shards)
        n = graph.num_vertices
        if num_shards == 1 or n == 0:
            return np.zeros(n, dtype=np.int64)
        num_blocks = num_shards * self.blocks_per_shard
        block_len = max(1, -(-n // num_blocks))  # ceil(n / num_blocks)
        blocks = np.arange(-(-n // block_len), dtype=np.uint64)
        hashed = (blocks * np.uint64(_HASH_MULT)) % np.uint64(2 ** 32)
        # Deal blocks to shards in hashed order (ties break by index).
        order = np.lexsort((blocks, hashed))
        shard_of_block = np.empty(len(blocks), dtype=np.int64)
        shard_of_block[order] = np.arange(len(blocks),
                                          dtype=np.int64) % num_shards
        ids = np.arange(n, dtype=np.int64)
        return shard_of_block[ids // block_len]


class LabelAwarePartitioner(Partitioner):
    """Edge-label-balancing assignment.

    Each vertex is tagged with its *dominant* incident edge label (the
    label carrying most of its incident edges; ties break toward the
    smaller label, isolated vertices tag as ``-1``).  Within every tag
    group, vertices are assigned heaviest-degree-first to the shard
    with the least accumulated degree *for that group*, so every edge
    label's incidence — the unit per-label storage scans and ``N(v,l)``
    lookups are billed in — ends up spread evenly across shards.
    """

    name = "label"

    def assign(self, graph: LabeledGraph, num_shards: int) -> np.ndarray:
        self._validate(num_shards)
        n = graph.num_vertices
        owner = np.zeros(n, dtype=np.int64)
        if num_shards == 1 or n == 0:
            return owner

        # Vectorized dominant-label / weight pass: one (vertex, label)
        # incidence-count reduction over the edge list instead of a
        # per-vertex np.unique loop.
        dominant = np.full(n, -1, dtype=np.int64)
        weight = np.zeros(n, dtype=np.int64)
        edge_arr = np.array([(u, v, lab) for u, v, lab in graph.edges()],
                            dtype=np.int64).reshape(-1, 3)
        if len(edge_arr):
            ends = np.concatenate([edge_arr[:, 0], edge_arr[:, 1]])
            labs = np.concatenate([edge_arr[:, 2], edge_arr[:, 2]])
            uniq_labs, lab_idx = np.unique(labs, return_inverse=True)
            keys, counts = np.unique(
                ends * len(uniq_labs) + lab_idx, return_counts=True)
            key_vert = keys // len(uniq_labs)
            key_lab = uniq_labs[keys % len(uniq_labs)]
            # Per vertex: the label with the highest incidence count,
            # smallest label on ties (lexsort keys are last-is-primary).
            order = np.lexsort((key_lab, -counts, key_vert))
            firsts = np.unique(key_vert[order], return_index=True)[1]
            dominant[key_vert[order][firsts]] = key_lab[order][firsts]
            weight[:] = np.bincount(ends, minlength=n)

        for tag in np.unique(dominant):
            members = np.where(dominant == tag)[0]
            # Heaviest first; ties keep ascending vertex id (stable).
            members = members[np.argsort(-weight[members],
                                         kind="stable")]
            loads = np.zeros(num_shards, dtype=np.int64)
            for v in members:
                shard = int(np.argmin(loads))  # first lightest shard
                owner[v] = shard
                loads[shard] += max(1, int(weight[v]))
        return owner


def make_partitioner(kind: str) -> Partitioner:
    """Build a partitioner by name (the CLI's ``--partitioner`` values)."""
    if kind == "hash":
        return HashPartitioner()
    if kind == "label":
        return LabelAwarePartitioner()
    raise ValueError(
        f"unknown partitioner {kind!r}; expected one of "
        f"{PARTITIONER_KINDS}")
