#!/usr/bin/env python
"""AST approximation of the mypy --strict gate for offline containers.

CI runs real ``mypy --strict`` (see the static-analysis job); this
script verifies the mechanically-checkable core of that contract with
nothing but the stdlib, so contributors in containers without mypy can
still catch the most common strict failures before pushing:

* every function/method in the strict packages has a return annotation
  and annotations on every parameter (including ``*args``/``**kwargs``);
* no bare built-in generics in annotations (``dict`` / ``list`` /
  ``tuple`` / ``set`` / ``frozenset`` / ``Dict`` / ... without
  parameters — mypy's ``disallow_any_generics``);
* no implicit Optional (a ``None`` default whose annotation is not an
  ``Optional[...]`` / ``... | None``) — mypy's ``no_implicit_optional``.

Exit 0 when clean, 1 with findings.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
STRICT_PATHS: Tuple[str, ...] = (
    "src/repro/core",
    "src/repro/service",
    "src/repro/storage",
    "src/repro/gpusim",
    "src/repro/analysis",
    "src/repro/obs",
    "src/repro/errors.py",
    "src/repro/graph/labeled_graph.py",
    "src/repro/graph/partition.py",
)

BARE_GENERICS = {
    "dict", "list", "tuple", "set", "frozenset", "type",
    "Dict", "List", "Tuple", "Set", "FrozenSet", "Type",
    "OrderedDict", "DefaultDict", "Deque", "Counter",
    "Sequence", "Iterable", "Iterator", "Mapping", "MutableMapping",
    "Callable", "Generator", "Awaitable", "Coroutine",
}


def iter_files() -> Iterator[Path]:
    for raw in STRICT_PATHS:
        path = REPO / raw
        if path.is_file():
            yield path
        else:
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)


def _is_optional_annotation(node: ast.expr) -> bool:
    """``Optional[...]``, ``X | None``, ``Union[..., None]``, ``Any``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(node, ast.Subscript):
        head = node.value
        name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None)
        if name == "Optional":
            return True
        if name == "Union":
            inner = node.slice
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            return any(isinstance(e, ast.Constant) and e.value is None
                       for e in elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_is_optional_annotation(node.left)
                or _is_optional_annotation(node.right)
                or (isinstance(node.right, ast.Constant)
                    and node.right.value is None))
    if isinstance(node, (ast.Name, ast.Attribute)):
        name = node.attr if isinstance(node, ast.Attribute) else node.id
        return name == "Any"
    return False


def _bare_generic_name(node: ast.expr) -> Optional[str]:
    """The offending name if ``node`` is an unparameterized generic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name) and node.id in BARE_GENERICS:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in BARE_GENERICS:
        return node.attr
    return None


def _walk_annotation(node: ast.expr) -> Iterator[ast.expr]:
    """Annotation sub-expressions that must themselves be parameterized."""
    yield node
    if isinstance(node, ast.Subscript):
        inner = node.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for elt in elts:
            yield from _walk_annotation(elt)
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _walk_annotation(node.left)
        yield from _walk_annotation(node.right)
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return
        yield from _walk_annotation(parsed)


def check_file(path: Path) -> List[str]:
    problems: List[str] = []
    rel = path.relative_to(REPO)
    tree = ast.parse(path.read_text(encoding="utf-8"))
    # A class defined in this module shadows any same-named typing
    # generic (e.g. an obs ``Counter`` is not ``typing.Counter``), so
    # bare references to it are ordinary non-generic annotations.
    local_classes = {n.name for n in ast.walk(tree)
                     if isinstance(n, ast.ClassDef)}

    def check_annotation_expr(node: ast.expr, where: str,
                              line: int) -> None:
        for sub in _walk_annotation(node):
            bare = _bare_generic_name(sub)
            if bare is not None and bare not in local_classes:
                problems.append(
                    f"{rel}:{line}: bare generic {bare!r} in {where} "
                    f"(disallow_any_generics)")

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            where = f"def {node.name}"
            if node.returns is None:
                problems.append(
                    f"{rel}:{node.lineno}: {where} missing return "
                    f"annotation (disallow_untyped_defs)")
            else:
                check_annotation_expr(node.returns, where, node.lineno)
            args = node.args
            all_args = (args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else []))
            for arg in all_args:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    problems.append(
                        f"{rel}:{arg.lineno}: {where} parameter "
                        f"{arg.arg!r} unannotated "
                        f"(disallow_incomplete_defs)")
                else:
                    check_annotation_expr(arg.annotation, where,
                                          arg.lineno)
            # implicit Optional: default None, annotation not Optional
            positional = args.posonlyargs + args.args
            defaults = args.defaults
            for arg, default in zip(positional[len(positional)
                                               - len(defaults):],
                                    defaults):
                if (isinstance(default, ast.Constant)
                        and default.value is None
                        and arg.annotation is not None
                        and not _is_optional_annotation(arg.annotation)):
                    problems.append(
                        f"{rel}:{arg.lineno}: {where} parameter "
                        f"{arg.arg!r} has None default but "
                        f"non-Optional annotation (no_implicit_optional)")
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if (isinstance(default, ast.Constant)
                        and default.value is None
                        and arg.annotation is not None
                        and not _is_optional_annotation(arg.annotation)):
                    problems.append(
                        f"{rel}:{arg.lineno}: {where} parameter "
                        f"{arg.arg!r} has None default but "
                        f"non-Optional annotation (no_implicit_optional)")
        elif isinstance(node, ast.AnnAssign):
            check_annotation_expr(node.annotation, "variable annotation",
                                  node.lineno)
    return problems


def main() -> int:
    problems: List[str] = []
    files = 0
    for path in iter_files():
        files += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    status = "clean" if not problems else f"{len(problems)} problem(s)"
    print(f"check_annotations: {files} file(s), {status}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
