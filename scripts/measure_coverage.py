#!/usr/bin/env python
"""Measure line coverage of ``src/repro`` under the tier-1 suite.

A dependency-free stand-in for pytest-cov (which CI installs, but a
hermetic dev container may not have): a ``sys.settrace`` tracer records
executed lines in ``src/repro`` while the tier-1 suite runs, and the
denominator is the set of executable lines derived from each module's
compiled code objects — the same universe coverage.py counts, modulo
small accounting differences (docstrings, ``else`` arms), which is why
the CI gate (``--cov-fail-under``) is set a few points *below* the
number this script prints.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args]
"""

from __future__ import annotations

import dis
import os
import sys
import threading
from types import CodeType

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")

executed: dict = {}


def _local_trace(frame, event, arg):
    if event == "line":
        executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(SRC):
        return None
    executed.setdefault(filename, set())
    return _local_trace


def _executable_lines(code: CodeType) -> set:
    lines = {line for _, line in dis.findlinestarts(code)
             if line is not None}
    for const in code.co_consts:
        if isinstance(const, CodeType):
            lines |= _executable_lines(const)
    return lines


def main() -> int:
    import pytest

    sys.settrace(_global_trace)
    threading.settrace(_global_trace)  # batch service worker pools
    rc = pytest.main(["-q", "-p", "no:cacheprovider",
                      *sys.argv[1:]])
    sys.settrace(None)
    threading.settrace(None)
    if rc != 0:
        print("test run failed; coverage numbers not meaningful")
        return rc

    total_lines = 0
    total_hit = 0
    rows = []
    for dirpath, _dirnames, filenames in sorted(os.walk(SRC)):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            lines = _executable_lines(compile(source, path, "exec"))
            hit = executed.get(path, set()) & lines
            total_lines += len(lines)
            total_hit += len(hit)
            pct = 100.0 * len(hit) / len(lines) if lines else 100.0
            rows.append((os.path.relpath(path, ROOT), len(lines),
                         len(hit), pct))

    width = max(len(r[0]) for r in rows)
    for rel, num, hit, pct in rows:
        print(f"{rel:<{width}}  {hit:>5}/{num:<5}  {pct:6.1f}%")
    overall = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"\nTOTAL {total_hit}/{total_lines} executable lines "
          f"= {overall:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
