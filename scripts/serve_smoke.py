"""End-to-end smoke test for the ``serve`` CLI (CI's serve-smoke leg).

Boots a real ``python -m repro.cli serve`` subprocess with the process
executor on the shm data plane, drives ~50 mixed-tenant queries through
the NDJSON TCP front door with :class:`repro.serve.GSIClient`, checks
the responses against a direct in-process engine, asks for a ``stats``
snapshot, then SIGTERMs the server and asserts a clean exit — and that
no ``gsi*`` shared-memory segments leaked into ``/dev/shm``.

Run: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

import asyncio
import glob
import signal
import socket
import subprocess
import sys
import time

from repro.core.config import GSIConfig
from repro.core.engine import GSIEngine
from repro.graph import datasets
from repro.graph.generators import random_walk_query
from repro.serve import GSIClient

DATASET = "enron"
NUM_QUERIES = 50
NUM_SHAPES = 6
NUM_TENANTS = 3
STARTUP_DEADLINE_S = 60.0


def free_port() -> int:
    """An OS-assigned free TCP port (the serve CLI rejects --port 0)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def shm_segments() -> set:
    return set(glob.glob("/dev/shm/gsi*"))


def wait_until_connectable(port: int, proc: subprocess.Popen) -> None:
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early with rc={proc.returncode}:\n"
                f"{proc.stdout.read()}")
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=1.0):
                return
        except OSError:
            time.sleep(0.2)
    raise AssertionError("server never became connectable")


async def drive(port: int) -> dict:
    graph = datasets.load(DATASET)
    shapes = [random_walk_query(graph, 4, seed=70 + s)
              for s in range(NUM_SHAPES)]
    oracle = GSIEngine(graph, GSIConfig.gsi_opt())
    expected = [oracle.match(q).match_set() for q in shapes]

    async with GSIClient("127.0.0.1", port) as client:
        assert await client.ping(), "ping failed"
        responses = await asyncio.gather(*[
            client.query(shapes[i % NUM_SHAPES],
                         tenant=f"tenant{i % NUM_TENANTS}")
            for i in range(NUM_QUERIES)])
        stats = await client.stats()

    for i, response in enumerate(responses):
        assert response["status"] == "ok", \
            f"query {i} failed: {response}"
        got = {tuple(m) for m in response["matches"]}
        want = expected[i % NUM_SHAPES]
        assert got == want, \
            f"query {i}: {len(got)} matches, expected {len(want)}"
    return stats


def main() -> int:
    before = shm_segments()
    port = free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--dataset", DATASET, "--port", str(port),
         "--executor", "process", "--workers", "2",
         "--data-plane", "shm", "--max-batch", "8",
         "--max-delay-ms", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        wait_until_connectable(port, proc)
        stats = asyncio.run(drive(port))

        metrics = stats["metrics"]
        completed = metrics["requests"]["completed"]
        assert completed == NUM_QUERIES, \
            f"completed {completed}, expected {NUM_QUERIES}"
        assert metrics["requests"]["deduped"] > 0, \
            "repeated shapes should dedup in flight"
        assert len(metrics["tenants"]) == NUM_TENANTS
        print(f"served {completed} queries across "
              f"{len(metrics['tenants'])} tenants "
              f"(deduped={metrics['requests']['deduped']}, "
              f"batches={metrics['batches']['executed']}, "
              f"plan hit rate="
              f"{metrics['cache']['hit_rate']:.2f})")

        proc.send_signal(signal.SIGTERM)
        output, _ = proc.communicate(timeout=60)
    except BaseException:
        proc.kill()
        proc.wait()
        raise

    assert proc.returncode == 0, \
        f"server exited rc={proc.returncode}:\n{output}"
    assert "shutting down" in output, \
        f"no graceful-shutdown banner in output:\n{output}"

    leaked = shm_segments() - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"
    print("serve smoke OK: clean shutdown, no leaked shm segments")
    return 0


if __name__ == "__main__":
    sys.exit(main())
