#!/usr/bin/env python
"""Offline approximation of the CI ruff gate (E,F,W,I,B @ 79 cols).

The container running the test suite has no ruff; CI does.  This script
re-implements the high-frequency checks with stdlib ast/tokenize so a
sweep can be driven locally: long lines (E501), trailing whitespace /
EOF newline (W291/W293/W292), multiple imports per line (E401), module
imports not at top (E402), bare except (E722), ``== None/True/False``
comparisons (E711/E712), unused imports (F401, module scope), mutable
argument defaults (B006), and import-block ordering (I001, sections
stdlib < third-party < first-party with ``repro`` first-party).

Not a replacement for ruff — an early-warning net.  Exit 1 on findings.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "scripts")
SKIP_DIRS = {"__pycache__", ".git"}
FIRST_PARTY = {"repro"}
# pyproject [tool.ruff.lint.isort] known-local-folder: helper modules
# imported via sys.path side effect; they sort after first-party.
LOCAL_FOLDER = {"bench_common", "fuzz_harness", "oracle", "conftest"}
MUTABLE_CALLS = {"list", "dict", "set"}

STDLIB = set(sys.stdlib_module_names)


def section_of(module: str) -> int:
    root = module.split(".")[0]
    if module.startswith("__future__"):
        return 0
    if root in LOCAL_FOLDER:
        return 4
    if root in FIRST_PARTY:
        return 3
    if root in STDLIB:
        return 1
    return 2


def iter_files() -> list[Path]:
    out: list[Path] = []
    for target in TARGETS:
        root = REPO / target
        for path in sorted(root.rglob("*.py")):
            if not any(part in SKIP_DIRS for part in path.parts):
                out.append(path)
    return out


def import_key(node: ast.stmt) -> tuple[int, str]:
    # isort's default (ruff: force-sort-within-sections = false) places
    # straight ``import X`` statements before ``from Y import`` ones.
    if isinstance(node, ast.Import):
        return 0, node.names[0].name.lower()
    assert isinstance(node, ast.ImportFrom)
    return 1, (node.module or "").lower()


def check_file(path: Path) -> list[str]:
    rel = path.relative_to(REPO)
    problems: list[str] = []
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()

    for i, line in enumerate(lines, 1):
        if len(line) > 79:
            problems.append(f"{rel}:{i}: E501 line too long ({len(line)})")
        if line != line.rstrip():
            rule = "W293" if not line.strip() else "W291"
            problems.append(f"{rel}:{i}: {rule} trailing whitespace")
    if source and not source.endswith("\n"):
        problems.append(f"{rel}:{len(lines)}: W292 no newline at EOF")

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        problems.append(f"{rel}:{exc.lineno}: E999 {exc.msg}")
        return problems

    # --- statement-level checks -------------------------------------
    top_imports: list[ast.stmt] = []
    seen_code = False
    for node in tree.body:
        is_import = isinstance(node, (ast.Import, ast.ImportFrom))
        is_docstring = (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str))
        if is_import:
            if seen_code:
                # Late imports are deliberate (sys.path bootstraps) and
                # carry their own noqa; they sort as their own block.
                if "noqa" not in lines[node.lineno - 1]:
                    problems.append(
                        f"{rel}:{node.lineno}: E402 module import not "
                        f"at top of file")
            else:
                top_imports.append(node)
        elif not is_docstring:
            seen_code = True

    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and len(node.names) > 1:
            problems.append(
                f"{rel}:{node.lineno}: E401 multiple imports on one line")
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(f"{rel}:{node.lineno}: E722 bare except")
        if isinstance(node, ast.Compare):
            for op, comp in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comp, ast.Constant) and comp.value is None:
                    problems.append(
                        f"{rel}:{node.lineno}: E711 comparison to None")
                elif (isinstance(comp, ast.Constant)
                        and isinstance(comp.value, bool)):
                    problems.append(
                        f"{rel}:{node.lineno}: E712 comparison to "
                        f"{comp.value}")
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for default in (list(node.args.defaults)
                            + [d for d in node.args.kw_defaults if d]):
                bad = (isinstance(default, (ast.List, ast.Dict, ast.Set))
                       or (isinstance(default, ast.Call)
                           and isinstance(default.func, ast.Name)
                           and default.func.id in MUTABLE_CALLS))
                if bad:
                    problems.append(
                        f"{rel}:{default.lineno}: B006 mutable argument "
                        f"default")

    # --- F401: module-scope imports never referenced ------------------
    if not rel.parts[-1] == "__init__.py":
        imported: dict[str, int] = {}
        for node in top_imports:
            if "noqa" in lines[node.lineno - 1]:
                continue
            names = (node.names if isinstance(node,
                                              (ast.Import, ast.ImportFrom))
                     else [])
            if (isinstance(node, ast.ImportFrom)
                    and node.module == "__future__"):
                continue
            for alias in names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                imported[bound] = node.lineno
        used: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                base = node
                while isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name):
                    used.add(base.id)
        # String annotations / docstring references can hide uses;
        # scan raw source as a conservative fallback.
        for name, lineno in sorted(imported.items()):
            if name not in used and source.count(name) <= 1:
                problems.append(
                    f"{rel}:{lineno}: F401 {name!r} imported but unused")

    # --- I001: section + ordering of the top import block -------------
    prev_section = -1
    prev_key: tuple[int, str] | None = None
    for node in top_imports:
        if isinstance(node, ast.ImportFrom) and node.level:
            continue  # relative imports: last section, rare here
        module = (node.names[0].name if isinstance(node, ast.Import)
                  else node.module or "")
        sec = section_of(module)
        key = import_key(node)
        if sec < prev_section:
            problems.append(
                f"{rel}:{node.lineno}: I001 import section out of order "
                f"({module})")
        elif sec == prev_section and prev_key and key < prev_key:
            problems.append(
                f"{rel}:{node.lineno}: I001 import not sorted ({module})")
        prev_section, prev_key = sec, key

    return problems


def main() -> int:
    problems: list[str] = []
    files = iter_files()
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"check_lint_approx: {len(files)} file(s), "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
