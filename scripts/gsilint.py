#!/usr/bin/env python
"""Thin wrapper so ``scripts/gsilint.py`` works without PYTHONPATH set."""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
